"""Ablation: the omnipotent user on vs off.

The paper: "When we omit the omnipotent user that represent[s] flow outside
of Twitter, we find the flow probabilities are increased marginally."  The
reason: without the outside-world source absorbing out-of-band arrivals,
the in-network edges must explain every adoption, inflating their learned
probabilities.
"""

import numpy as np
import pytest

from repro.experiments.common import build_twitter_world
from repro.learning.joint_bayes import train_joint_bayes
from repro.twitter.simulator import TwitterConfig
from repro.twitter.unattributed import OMNIPOTENT_USER, build_tag_evidence


@pytest.fixture(scope="module")
def world():
    config = TwitterConfig(
        n_users=35,
        n_follow_edges=170,
        message_kind_weights=(0.0, 1.0, 0.0),
        offline_adoption_rate=3.0,
        high_fraction=0.15,
        high_params=(6.0, 6.0),
        low_params=(1.5, 12.0),
    )
    return build_twitter_world(config, n_train=300, n_test=0, structure_seed=5)


def _train(world, use_omnipotent):
    result = build_tag_evidence(
        world.train,
        world.service.influence_graph,
        "hashtag",
        use_omnipotent_user=use_omnipotent,
    )
    trained = train_joint_bayes(
        result.graph,
        result.evidence,
        n_samples=200,
        burn_in=200,
        thinning=1,
        rng=7,
    )
    in_network = [
        trained.means[edge.index]
        for edge in result.graph.iter_edges()
        if edge.src != OMNIPOTENT_USER
    ]
    return float(np.mean(in_network))


def test_training_with_omnipotent(benchmark, world):
    benchmark.pedantic(_train, args=(world, True), rounds=1, iterations=1)


def test_training_without_omnipotent(benchmark, world):
    benchmark.pedantic(_train, args=(world, False), rounds=1, iterations=1)


def test_omitting_omnipotent_inflates_edges(benchmark, world):
    def compare():
        return _train(world, True), _train(world, False)

    with_world, without_world = benchmark.pedantic(
        compare, rounds=1, iterations=1
    )
    print(
        f"\nmean in-network edge probability: with omnipotent="
        f"{with_world:.4f}, without={without_world:.4f}"
    )
    assert without_world > with_world
