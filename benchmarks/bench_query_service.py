"""Query-service throughput: one shared sample bank vs one chain per query.

The flow query service exists to amortise Metropolis-Hastings sampling
across a batch of queries: N queries against the same ``(model,
condition set)`` should cost roughly one chain, not N.  This benchmark
measures exactly that, on the paper's Twitter scale (~6K users / 14K
edges, Section IV-C):

* **baseline** -- answer a 100-query mixed batch (marginal, joint,
  conditional, impact) the pre-service way: one fresh estimator call --
  and therefore one fresh chain, burn-in included -- per query.
* **service** -- the same batch through ``FlowQueryService.query_batch``,
  which groups the queries by condition set, draws one shared sample
  set per group, and reuses each pseudo-state's active-adjacency filter
  across every source in the group.

Results (timings, speedup, and a service-vs-direct agreement check on
the marginal queries) are written to ``BENCH_query_service.json``.

Run standalone -- this is not a pytest-benchmark module::

    python benchmarks/bench_query_service.py            # full, paper scale
    python benchmarks/bench_query_service.py --smoke    # small, for CI
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Any, Dict, List, Tuple

import numpy as np

from repro.core.conditions import FlowConditionSet
from repro.graph.generators import random_icm
from repro.mcmc.chain import ChainSettings
from repro.obs.meta import run_metadata
from repro.mcmc.flow_estimator import (
    estimate_flow_probability,
    estimate_impact_distribution,
    estimate_joint_flow_probability,
)
from repro.service.api import FlowQueryService
from repro.service.queries import FlowQuery


def build_queries(model, n_queries: int, rng: np.random.Generator) -> List[FlowQuery]:
    """A mixed batch over a few sources: the service's intended workload.

    Sinks are drawn from nodes that simulated cascades from each source
    actually reach, so the queried flow probabilities are non-trivial
    (uniformly random pairs on a sparse graph are almost all zero).
    """
    from repro.core import simulate_cascade

    nodes = model.graph.nodes()
    sources = []
    reachable: Dict[Any, List[Any]] = {}
    for i in rng.choice(len(nodes), size=32, replace=False):
        source = nodes[int(i)]
        reached: List[Any] = []
        for trial in range(8):
            result = simulate_cascade(model, [source], rng=int(rng.integers(2**31)))
            reached.extend(n for n in result.active_nodes if n != source)
        candidates = list(dict.fromkeys(reached))
        if candidates:
            sources.append(source)
            reachable[source] = candidates
        if len(sources) == 8:
            break
    if not sources:
        raise RuntimeError("no source with reachable sinks; graph too sparse")
    condition_source = sources[0]
    condition = (condition_source, reachable[condition_source][0], True)
    queries: List[FlowQuery] = []
    for index in range(n_queries):
        kind = index % 10
        source = sources[index % len(sources)]
        candidates = reachable[source]
        sink = candidates[index % len(candidates)]
        other = candidates[(index + 1) % len(candidates)]
        if kind < 5:  # 50% marginal
            queries.append(FlowQuery.marginal(source, sink))
        elif kind < 7:  # 20% joint
            queries.append(FlowQuery.joint([(source, sink), (source, other)]))
        elif kind < 9:  # 20% conditional
            queries.append(FlowQuery.conditional(source, sink, [condition]))
        else:  # 10% impact
            queries.append(FlowQuery.impact(source))
    return queries


def run_baseline(
    model, queries: List[FlowQuery], n_samples: int, settings: ChainSettings
) -> Tuple[float, List[Any]]:
    """Per-query estimator calls: a fresh chain (and burn-in) every time."""
    answers: List[Any] = []
    start = time.perf_counter()
    for index, query in enumerate(queries):
        rng = np.random.default_rng(10_000 + index)
        if query.kind == "marginal":
            conditions = (
                FlowConditionSet.from_tuples(query.conditions)
                if query.conditions
                else None
            )
            estimate = estimate_flow_probability(
                model,
                *query.flows[0],
                n_samples=n_samples,
                conditions=conditions,
                settings=settings,
                rng=rng,
            )
            answers.append(estimate.probability)
        elif query.kind == "joint":
            estimate = estimate_joint_flow_probability(
                model, query.flows, n_samples=n_samples, settings=settings, rng=rng
            )
            answers.append(estimate.probability)
        elif query.kind == "impact":
            answers.append(
                estimate_impact_distribution(
                    model,
                    query.nodes[0],
                    n_samples=n_samples,
                    settings=settings,
                    rng=rng,
                )
            )
        else:
            raise ValueError(f"no baseline mapping for {query.kind!r}")
    return time.perf_counter() - start, answers


def run_service(
    model, queries: List[FlowQuery], n_samples: int, settings: ChainSettings
) -> Tuple[float, Any]:
    """The same batch through the service's shared banks."""
    service = FlowQueryService(settings=settings, rng=0)
    service.register("bench", model)
    start = time.perf_counter()
    results = service.query_batch("bench", queries, n_samples=n_samples)
    return time.perf_counter() - start, results


def main(argv=None) -> int:
    """Run the benchmark and write ``BENCH_query_service.json``."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small model and batch (seconds, for CI) instead of paper scale",
    )
    parser.add_argument(
        "--output",
        default="BENCH_query_service.json",
        help="where to write the JSON snapshot",
    )
    args = parser.parse_args(argv)

    # Thinning must scale with the edge count: each step flips one edge,
    # so decorrelating a reachability indicator takes O(n_edges) steps.
    if args.smoke:
        n_nodes, n_edges, n_queries, n_samples = 400, 1000, 30, 60
        settings = ChainSettings(burn_in=500, thinning=300)
    else:
        n_nodes, n_edges, n_queries, n_samples = 6000, 14_000, 100, 200
        settings = ChainSettings(burn_in=2000, thinning=1000)

    print(
        f"model: {n_nodes} nodes / {n_edges} edges | "
        f"{n_queries} queries | {n_samples} samples/query | {settings}"
    )
    model = random_icm(n_nodes, n_edges, rng=0, probability_range=(0.01, 0.6))
    model.graph.csr()  # build once, outside both timed regions
    queries = build_queries(model, n_queries, np.random.default_rng(99))

    service_seconds, service_results = run_service(
        model, queries, n_samples, settings
    )
    print(f"service : {service_seconds:8.2f} s for {n_queries} queries")
    baseline_seconds, baseline_answers = run_baseline(
        model, queries, n_samples, settings
    )
    print(f"baseline: {baseline_seconds:8.2f} s for {n_queries} queries")
    speedup = baseline_seconds / service_seconds
    print(f"speedup : {speedup:8.2f}x")

    # agreement check on the scalar queries: both are Monte-Carlo
    # estimates of the same quantity, so they must sit within a few
    # combined standard errors of each other.
    gaps = []
    for query, result, answer in zip(queries, service_results, baseline_answers):
        if query.kind in ("marginal", "joint"):
            sigma = max(result.std_error, 0.0) + np.sqrt(
                max(answer * (1.0 - answer), 0.0) / n_samples
            )
            gaps.append(
                {
                    "kind": query.kind,
                    "service": result.value,
                    "baseline": answer,
                    "gap": abs(result.value - answer),
                    "combined_sigma": float(sigma),
                }
            )
    worst = max((g["gap"] / (g["combined_sigma"] + 1e-9) for g in gaps), default=0.0)
    print(f"agreement: worst scalar gap = {worst:.2f} combined std-errors")

    snapshot: Dict[str, Any] = {
        "benchmark": "query_service_batch",
        "mode": "smoke" if args.smoke else "full",
        "model": {"n_nodes": n_nodes, "n_edges": n_edges},
        "batch": {
            "n_queries": n_queries,
            "n_samples_per_query": n_samples,
            "kinds": {
                kind: sum(1 for q in queries if q.kind == kind)
                for kind in ("marginal", "joint", "impact")
            },
            "n_condition_groups": len(
                {q.effective_conditions() for q in queries}
            ),
        },
        "settings": {
            "burn_in": settings.burn_in,
            "thinning": settings.thinning,
        },
        "baseline_seconds": baseline_seconds,
        "service_seconds": service_seconds,
        "speedup": speedup,
        "agreement": {
            "n_scalar_queries_checked": len(gaps),
            "worst_gap_in_combined_std_errors": worst,
        },
        "run_metadata": run_metadata(),
    }
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(snapshot, handle, indent=1)
        handle.write("\n")
    print(f"wrote {args.output}")

    if speedup < 5.0 and not args.smoke:
        print("FAIL: speedup below the 5x acceptance threshold", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
