#!/usr/bin/env python
"""Deadline-aware alerting with the edge-latency extension.

A public-health agency must decide whether its informal staff network can
spread an urgent alert to a remote clinic *within 12 hours*, or whether it
needs to pay for a direct courier.  The plain ICM answers "will the alert
arrive?"; the paper's proposed delay extension (Discussion section)
answers "will it arrive in time?" by attaching a forwarding-delay
distribution to each channel and running shortest-path passes over
sampled network states.

Run:  python examples/deadline_aware_alerting.py
"""

from repro import DiGraph, ICM, estimate_flow_probability
from repro.extensions import (
    DelayedICM,
    ExponentialDelay,
    FixedDelay,
    GammaDelay,
    estimate_arrival_distribution,
    estimate_flow_within_deadline,
)


def main() -> None:
    # The relay network: HQ -> regional offices -> field workers -> clinic.
    graph = DiGraph(
        edges=[
            ("hq", "region_a"),
            ("hq", "region_b"),
            ("region_a", "field_1"),
            ("region_a", "field_2"),
            ("region_b", "field_2"),
            ("field_1", "clinic"),
            ("field_2", "clinic"),
        ]
    )
    model = ICM(
        graph,
        {
            ("hq", "region_a"): 0.95,
            ("hq", "region_b"): 0.9,
            ("region_a", "field_1"): 0.7,
            ("region_a", "field_2"): 0.6,
            ("region_b", "field_2"): 0.8,
            ("field_1", "clinic"): 0.75,
            ("field_2", "clinic"): 0.65,
        },
    )
    # Per-channel forwarding delays (hours): offices batch twice a day,
    # field workers check messages sporadically, the clinic link is slow.
    delays = [
        FixedDelay(1.0),          # hq -> region_a: direct line
        FixedDelay(1.0),          # hq -> region_b
        ExponentialDelay(4.0),    # region_a -> field_1
        ExponentialDelay(4.0),    # region_a -> field_2
        ExponentialDelay(3.0),    # region_b -> field_2
        GammaDelay(2.0, 3.0),     # field_1 -> clinic (mean 6h, skewed)
        GammaDelay(2.0, 4.0),     # field_2 -> clinic (mean 8h, skewed)
    ]
    delayed = DelayedICM(model, delays)

    eventually = estimate_flow_probability(
        model, "hq", "clinic", n_samples=8000, rng=0
    )
    print(f"Pr[alert EVER reaches the clinic]      ~= {eventually.probability:.3f}")

    arrival = estimate_arrival_distribution(
        delayed, "hq", "clinic", n_samples=8000, rng=1
    )
    print(
        f"given arrival: median {arrival.quantile(0.5):.1f}h, "
        f"90th percentile {arrival.quantile(0.9):.1f}h"
    )

    print("\ndeadline analysis:")
    for deadline in (6.0, 12.0, 24.0, 48.0):
        within = estimate_flow_within_deadline(
            delayed, "hq", "clinic", deadline=deadline, n_samples=8000, rng=2
        )
        print(f"  Pr[arrives within {deadline:5.1f}h] ~= {within:.3f}")

    twelve_hour = estimate_flow_within_deadline(
        delayed, "hq", "clinic", deadline=12.0, n_samples=8000, rng=3
    )
    if twelve_hour < 0.5:
        print(
            f"\nonly {twelve_hour:.0%} chance of on-time delivery through "
            f"the network: send the courier."
        )
    else:
        print(
            f"\n{twelve_hour:.0%} chance of on-time delivery: the network "
            f"relay suffices."
        )


if __name__ == "__main__":
    main()
