#!/usr/bin/env python
"""Quickstart: build an ICM, learn it from data, query flow probabilities.

Walks the full public-API loop in five steps:

1. define a small information-flow network with known edge probabilities;
2. simulate attributed cascades through it (the "observed history");
3. learn a betaICM back from the history;
4. query end-to-end, conditional, and joint flow probabilities with the
   Metropolis-Hastings sampler;
5. check the learned answers against the exact ground truth.

Run:  python examples/quickstart.py
"""

from repro import (
    AttributedEvidence,
    DiGraph,
    FlowConditionSet,
    ICM,
    estimate_flow_probability,
    estimate_joint_flow_probability,
    exact_flow_probability,
    simulate_cascade,
    train_beta_icm,
)
from repro.learning import attributed_from_cascade


def main() -> None:
    # 1. A small office network: who forwards information to whom.
    graph = DiGraph(
        edges=[
            ("alice", "bob"),
            ("alice", "carol"),
            ("bob", "dave"),
            ("carol", "dave"),
            ("dave", "erin"),
        ]
    )
    truth = ICM(
        graph,
        {
            ("alice", "bob"): 0.8,
            ("alice", "carol"): 0.4,
            ("bob", "dave"): 0.5,
            ("carol", "dave"): 0.6,
            ("dave", "erin"): 0.3,
        },
    )
    print(f"network: {graph.n_nodes} people, {graph.n_edges} channels")

    # 2. Simulate 2000 documents originating with alice, with full
    #    attribution (we see exactly which channel carried each one).
    evidence = AttributedEvidence()
    for seed in range(2000):
        cascade = simulate_cascade(truth, ["alice"], rng=seed)
        evidence.add(attributed_from_cascade(truth, cascade))
    print(f"observed {len(evidence)} attributed cascades")

    # 3. Learn a betaICM from the history.
    learned = train_beta_icm(graph, evidence)
    print("\nlearned edge probabilities (posterior mean vs truth):")
    for edge in graph.edges():
        print(
            f"  {edge.src:>5} -> {edge.dst:<5} "
            f"learned={learned.mean(edge.src, edge.dst):.3f} "
            f"truth={truth.probability(edge.src, edge.dst):.3f}"
        )

    # 4. Query the learned model with Metropolis-Hastings sampling.
    flow = estimate_flow_probability(
        learned, "alice", "erin", n_samples=4000, rng=0
    )
    print(f"\nPr[alice ; erin]                 ~= {flow.probability:.3f}")

    conditions = FlowConditionSet.from_tuples([("alice", "dave", True)])
    conditional = estimate_flow_probability(
        learned, "alice", "erin", conditions=conditions, n_samples=4000, rng=1
    )
    print(f"Pr[alice ; erin | alice ; dave]  ~= {conditional.probability:.3f}")

    joint = estimate_joint_flow_probability(
        learned, [("alice", "bob"), ("alice", "carol")], n_samples=4000, rng=2
    )
    print(f"Pr[alice ; bob AND alice ; carol] ~= {joint.probability:.3f}")

    # 5. Sanity check against the exact answer on the true model.
    exact = exact_flow_probability(truth, "alice", "erin")
    print(f"\nexact Pr[alice ; erin] under the true model: {exact:.3f}")
    gap = abs(flow.probability - exact)
    print(f"learned-model estimate is within {gap:.3f} of the truth")


if __name__ == "__main__":
    main()
