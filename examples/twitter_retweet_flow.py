#!/usr/bin/env python
"""Retweet-flow modelling on raw tweets (the paper's attributed pipeline).

Starts from nothing but a stream of raw tweet text -- including nested
``RT @user:`` chains and *missing originals* -- and:

1. reconstructs attributed flow evidence and the network topology from
   message syntax alone;
2. trains a betaICM;
3. picks an "interesting" (high-impact) user and predicts, for everyone
   within two hops, the probability that they retweet that user;
4. compares the predictions with fresh held-out cascades.

The tweets come from the synthetic Twitter service (DESIGN.md explains the
substitution for the paper's crawl), so ground truth is available for the
final comparison.

Run:  python examples/twitter_retweet_flow.py
"""

import numpy as np

from repro.core.cascade import simulate_cascade
from repro.experiments.common import restrict_beta_icm
from repro.graph.traversal import descendants_within_radius
from repro.learning import train_beta_icm
from repro.mcmc import estimate_flow_probabilities
from repro.twitter import (
    SyntheticTwitter,
    TwitterConfig,
    build_retweet_evidence,
    select_interesting_users,
)


def main() -> None:
    # A synthetic Twitter service: 80 users, shallow retweet cascades,
    # and 20% of retweeted originals lost from the record.
    config = TwitterConfig(
        n_users=80,
        n_follow_edges=480,
        message_kind_weights=(1.0, 0.0, 0.0),
        high_fraction=0.12,
        high_params=(6.0, 6.0),
        low_params=(1.5, 12.0),
        drop_original_probability=0.2,
    )
    service = SyntheticTwitter(config, rng=0)
    tweets, _records = service.generate(2500, rng=1)
    print(f"raw corpus: {len(tweets)} tweets from {len(tweets.authors())} users")

    # 1. Reconstruct attributed evidence from message syntax.
    pipeline = build_retweet_evidence(tweets)
    print(
        f"reconstructed {pipeline.n_objects} message objects, "
        f"{len(pipeline.evidence)} with observed flow; "
        f"recovered {pipeline.n_recovered} lost (re)tweets; "
        f"inferred {pipeline.graph.n_edges} influence edges"
    )

    # 2. Train the betaICM.
    model = train_beta_icm(pipeline.graph, pipeline.evidence)

    # 3. Focus on the most retweeted user; predict retweet probability for
    #    everyone within two hops.
    focus = select_interesting_users(tweets, top_n=1)[0]
    neighbourhood = descendants_within_radius(pipeline.graph, focus, 2)
    sub_model = restrict_beta_icm(model, neighbourhood)
    others = sorted(node for node in neighbourhood if node != focus)
    estimates = estimate_flow_probabilities(
        sub_model,
        [(focus, other) for other in others],
        n_samples=3000,
        rng=2,
    )

    # 4. Fresh held-out cascades from the hidden truth for comparison.
    trials = 400
    rng = np.random.default_rng(3)
    reached = {other: 0 for other in others}
    for _ in range(trials):
        cascade = simulate_cascade(service.retweet_model, [focus], rng=rng)
        for other in others:
            if other in cascade.active_nodes:
                reached[other] += 1

    print(f"\nretweet-flow predictions for @{focus} (radius-2 neighbourhood):")
    print(f"{'user':>8} | {'predicted':>9} | {'held-out':>8}")
    for other in others:
        predicted = estimates[(focus, other)].probability
        empirical = reached[other] / trials
        print(f"{other:>8} | {predicted:9.3f} | {empirical:8.3f}")

    errors = [
        abs(estimates[(focus, other)].probability - reached[other] / trials)
        for other in others
    ]
    print(f"\nmean absolute error vs held-out truth: {np.mean(errors):.3f}")


if __name__ == "__main__":
    main()
