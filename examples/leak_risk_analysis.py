#!/usr/bin/env python
"""Risk-aware information-leakage analysis (the paper's motivating use case).

An organisation wants to share a sensitive document with one analyst and
asks: *what is the risk it reaches a competitor?*  Beyond the expected
leak probability, a risk-aware decision needs:

* **conditional flow** -- if we later learn the document reached the
  middle manager, how does the risk change? (Equation 6)
* **source-to-community flow** -- which group of outsiders is most exposed?
* **a distribution over the leak probability** -- two models with the same
  mean risk can differ wildly in how *certain* that risk is
  (nested Metropolis-Hastings, Section III-E);
* **dispersion / impact** -- if it leaks, how far does it spread?

Run:  python examples/leak_risk_analysis.py
"""

import numpy as np

from repro import (
    BetaICM,
    DiGraph,
    FlowConditionSet,
    estimate_flow_probability,
    estimate_impact_distribution,
    nested_flow_distribution,
)
from repro.mcmc import estimate_community_flow


def main() -> None:
    # The disclosure network: engineering shares with analysts and
    # managers; some employees talk to outsiders.  Beta parameters encode
    # both the leak propensity AND how much evidence backs it: the
    # (2, 18) edge and the (20, 180) edge have the same mean 0.1, but very
    # different certainty.
    graph = DiGraph(
        edges=[
            ("analyst", "manager"),
            ("analyst", "eng_lead"),
            ("manager", "exec"),
            ("manager", "contractor"),
            ("eng_lead", "contractor"),
            ("contractor", "competitor"),
            ("exec", "press"),
        ]
    )
    model = BetaICM(
        graph,
        alphas={
            ("analyst", "manager"): 30.0,
            ("analyst", "eng_lead"): 45.0,
            ("manager", "exec"): 10.0,
            ("manager", "contractor"): 2.0,
            ("eng_lead", "contractor"): 20.0,
            ("contractor", "competitor"): 2.0,
            ("exec", "press"): 1.0,
        },
        betas={
            ("analyst", "manager"): 30.0,
            ("analyst", "eng_lead"): 15.0,
            ("manager", "exec"): 30.0,
            ("manager", "contractor"): 18.0,
            ("eng_lead", "contractor"): 60.0,
            ("contractor", "competitor"): 180.0,
            ("exec", "press"): 99.0,
        },
    )

    # Headline risk: document given to the analyst reaching the competitor.
    risk = estimate_flow_probability(
        model, "analyst", "competitor", n_samples=6000, rng=0
    )
    print(f"Pr[analyst ; competitor]            ~= {risk.probability:.3f}")

    # Conditional re-assessment: the manager is known to have received it.
    conditions = FlowConditionSet.from_tuples([("analyst", "manager", True)])
    conditional = estimate_flow_probability(
        model,
        "analyst",
        "competitor",
        conditions=conditions,
        n_samples=6000,
        rng=1,
    )
    print(
        f"... given the manager already has it ~= {conditional.probability:.3f}"
    )

    # Community exposure: every outsider at once, from one chain.
    outsiders = ["competitor", "press"]
    community = estimate_community_flow(
        model, "analyst", outsiders, n_samples=6000, rng=2
    )
    print("\nexposure per outsider:")
    for node in outsiders:
        print(f"  analyst ; {node:<11} ~= {community[node].probability:.3f}")

    # Distribution over the risk itself: how sure are we about 'risk'?
    distribution = nested_flow_distribution(
        model,
        "analyst",
        "competitor",
        n_models=80,
        samples_per_model=800,
        rng=3,
    )
    low, high = np.quantile(distribution, [0.05, 0.95])
    print(
        f"\nrisk distribution: mean {distribution.mean():.3f}, "
        f"90% interval [{low:.3f}, {high:.3f}]"
    )
    print(
        "(a wide interval says the risk estimate itself is poorly "
        "evidenced -- collect more data before acting)"
    )

    # Dispersion: if the document leaves the analyst, how many parties end
    # up holding it?
    impact = estimate_impact_distribution(
        model, "analyst", n_samples=8000, rng=4
    )
    expected = sum(k * p for k, p in impact.items())
    tail = sum(p for k, p in impact.items() if k >= 4)
    print(f"\nexpected number of recipients: {expected:.2f}")
    print(f"probability 4+ parties receive it: {tail:.3f}")


if __name__ == "__main__":
    main()
