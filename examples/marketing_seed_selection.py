#!/usr/bin/env python
"""Choosing a campaign seed user by expected reach and risk.

A marketing team can give a promotion to one of several candidate
influencers and wants the seed that maximises spread -- one of the
paper's motivating applications ("maximising marketing impact on social
media").  With an ICM learned from past campaigns this becomes a set of
flow queries:

* expected impact (how many users adopt) per candidate seed;
* the full impact *distribution* -- a risk-averse team may prefer a seed
  with a slightly lower mean but a fatter guaranteed floor;
* source-to-community flow into a target demographic.

Run:  python examples/marketing_seed_selection.py
"""

import numpy as np

from repro.graph.generators import gnm_random_graph
from repro.core import ICM
from repro.mcmc import estimate_community_flow, estimate_impact_distribution


def main() -> None:
    # A 60-user social graph with heterogeneous influence strengths.
    rng = np.random.default_rng(7)
    graph = gnm_random_graph(60, 300, rng=rng, node_prefix="u")
    probabilities = rng.beta(1.6, 9.0, size=graph.n_edges)  # mostly weak ties
    model = ICM(graph, probabilities)

    candidates = ["u0", "u1", "u2", "u3"]
    target_demographic = [f"u{i}" for i in range(40, 50)]

    print("candidate seeds, by estimated campaign outcome:")
    print(
        f"{'seed':>5} | {'E[impact]':>9} | {'P[>=5 adopters]':>15} "
        f"| {'P[>=1 in target]':>16}"
    )
    summaries = []
    for seed_index, seed in enumerate(candidates):
        impact = estimate_impact_distribution(
            model, seed, n_samples=4000, rng=seed_index
        )
        expected = sum(k * p for k, p in impact.items())
        at_least_5 = sum(p for k, p in impact.items() if k >= 5)

        reach = estimate_community_flow(
            model, seed, target_demographic, n_samples=4000, rng=100 + seed_index
        )
        misses = 1.0
        for estimate in reach.values():
            misses *= 1.0 - estimate.probability
        hits_target = 1.0 - misses

        summaries.append((seed, expected, at_least_5, hits_target))
        print(
            f"{seed:>5} | {expected:9.2f} | {at_least_5:15.3f} "
            f"| {hits_target:16.3f}"
        )

    best_mean = max(summaries, key=lambda row: row[1])
    best_floor = max(summaries, key=lambda row: row[2])
    best_target = max(summaries, key=lambda row: row[3])
    print(f"\nhighest expected impact:        {best_mean[0]}")
    print(f"best >=5-adopter guarantee:     {best_floor[0]}")
    print(f"best reach into the demographic: {best_target[0]}")
    if len({best_mean[0], best_floor[0], best_target[0]}) > 1:
        print(
            "note: the rankings disagree -- exactly why the paper argues "
            "for distributions over flow, not just expectations."
        )


if __name__ == "__main__":
    main()
