#!/usr/bin/env python
"""Unattributed learning: hashtags vs URLs (the paper's Section V story).

When only *who adopted, and when* is known -- no retweet syntax to
attribute the flow -- edge probabilities must be learned from ambiguous
evidence.  This example:

1. generates a synthetic Twitter corpus where URLs spread only in-network
   but hashtags also arrive out-of-band (news, events, radio);
2. extracts unattributed activation traces for both object kinds, adding
   the paper's *omnipotent user* for the outside world;
3. learns edge probabilities four ways -- joint Bayes (the paper's
   method), Goyal et al.'s credit heuristic, the filtered baseline, and
   Saito-style EM -- and scores each against the hidden ground truth;
4. shows why hashtags are fundamentally harder: the out-of-band channel
   inflates what in-network edges must explain.

Run:  python examples/hashtag_vs_url_learning.py
"""

import numpy as np

from repro import rmse, train_filtered, train_goyal, train_joint_bayes, train_saito_em
from repro.twitter import (
    OMNIPOTENT_USER,
    SyntheticTwitter,
    TwitterConfig,
    build_tag_evidence,
)


def in_network_error(graph, truth, means_lookup) -> float:
    """RMSE over real (non-omnipotent) edges against the hidden truth."""
    estimates, truths = [], []
    for edge in graph.iter_edges():
        if edge.src == OMNIPOTENT_USER:
            continue
        estimates.append(means_lookup(edge))
        truths.append(truth.probability(edge.src, edge.dst))
    return rmse(estimates, truths)


def main() -> None:
    config = TwitterConfig(
        n_users=40,
        n_follow_edges=200,
        message_kind_weights=(0.0, 0.5, 0.5),
        offline_adoption_rate=2.5,
        high_fraction=0.15,
        high_params=(6.0, 6.0),
        low_params=(1.5, 12.0),
    )
    service = SyntheticTwitter(config, rng=0)
    tweets, _records = service.generate(900, rng=1)
    print(f"corpus: {len(tweets)} raw tweets")

    for kind, truth in (("url", service.url_model), ("hashtag", service.hashtag_model)):
        extracted = build_tag_evidence(
            tweets, service.influence_graph, kind
        )
        print(
            f"\n=== {kind}s: {len(extracted.tags)} objects, "
            f"{extracted.graph.n_edges} edges incl. omnipotent user ==="
        )
        rng = np.random.default_rng(2)

        joint = train_joint_bayes(
            extracted.graph,
            extracted.evidence,
            n_samples=300,
            burn_in=300,
            thinning=1,
            rng=rng,
        )
        goyal = train_goyal(extracted.graph, extracted.evidence)
        filtered = train_filtered(extracted.graph, extracted.evidence)
        saito = train_saito_em(extracted.graph, extracted.evidence, rng=rng)

        graph = extracted.graph
        scores = {
            "joint Bayes (ours)": in_network_error(
                graph, truth, lambda e: joint.means[e.index]
            ),
            "Goyal credit": in_network_error(
                graph, truth, lambda e: goyal.probability_by_index(e.index)
            ),
            "filtered": in_network_error(
                graph, truth, lambda e: filtered.means()[e.index]
            ),
            "Saito EM": in_network_error(
                graph, truth, lambda e: saito.probability_by_index(e.index)
            ),
        }
        for method, score in sorted(scores.items(), key=lambda item: item[1]):
            print(f"  RMSE vs hidden truth, {method:<18}: {score:.4f}")

        # How much does the omnipotent user absorb?
        omnipotent_mass = np.mean(
            [
                joint.means[edge.index]
                for edge in graph.iter_edges()
                if edge.src == OMNIPOTENT_USER
            ]
        )
        print(f"  mean learned omnipotent-edge probability: {omnipotent_mass:.4f}")

    print(
        "\nhashtags carry an out-of-band channel, so their in-network edges"
        "\nare harder to pin down -- the paper's Fig. 8 vs Fig. 9 contrast."
    )


if __name__ == "__main__":
    main()
