"""Setuptools entry point.

Kept alongside ``pyproject.toml`` so that ``pip install -e .`` works in
offline environments without the ``wheel`` package (pip falls back to the
legacy ``setup.py develop`` path when no ``[build-system]`` table is
present).
"""

from setuptools import setup

setup()
