"""Tests for the edge-latency extension."""

import numpy as np
import pytest

from repro.core.icm import ICM
from repro.errors import ModelError
from repro.extensions.delays import (
    DelayedICM,
    ExponentialDelay,
    FixedDelay,
    GammaDelay,
    estimate_arrival_distribution,
    estimate_flow_within_deadline,
)
from repro.graph.digraph import DiGraph
from repro.mcmc.chain import ChainSettings

FAST = ChainSettings(burn_in=150, thinning=2)


class TestDelayDistributions:
    def test_fixed(self, rng):
        delay = FixedDelay(2.5)
        assert delay.mean == 2.5
        assert np.all(delay.sample(10, rng) == 2.5)

    def test_fixed_negative_rejected(self):
        with pytest.raises(ModelError):
            FixedDelay(-1.0)

    def test_exponential(self, rng):
        delay = ExponentialDelay(3.0)
        samples = delay.sample(20_000, rng)
        assert samples.mean() == pytest.approx(3.0, rel=0.05)
        assert np.all(samples >= 0.0)

    def test_exponential_invalid(self):
        with pytest.raises(ModelError):
            ExponentialDelay(0.0)

    def test_gamma(self, rng):
        delay = GammaDelay(2.0, 1.5)
        assert delay.mean == 3.0
        samples = delay.sample(20_000, rng)
        assert samples.mean() == pytest.approx(3.0, rel=0.05)

    def test_gamma_invalid(self):
        with pytest.raises(ModelError):
            GammaDelay(0.0, 1.0)


class TestDelayedICM:
    def test_single_distribution_broadcast(self, triangle_icm):
        delayed = DelayedICM(triangle_icm, FixedDelay(1.0))
        assert len(delayed.delays) == 3
        assert np.allclose(delayed.mean_delays(), 1.0)

    def test_per_edge_distributions(self, triangle_icm):
        delayed = DelayedICM(
            triangle_icm, [FixedDelay(1.0), FixedDelay(2.0), FixedDelay(3.0)]
        )
        assert delayed.mean_delays().tolist() == [1.0, 2.0, 3.0]

    def test_wrong_count_rejected(self, triangle_icm):
        with pytest.raises(ModelError):
            DelayedICM(triangle_icm, [FixedDelay(1.0)])

    def test_beta_icm_collapsed(self, small_beta_icm):
        delayed = DelayedICM(small_beta_icm, FixedDelay(1.0))
        assert np.allclose(
            delayed.model.edge_probabilities, small_beta_icm.means()
        )


class TestArrivalDistribution:
    def test_flow_probability_matches_plain_estimate(self, chain_icm):
        delayed = DelayedICM(chain_icm, FixedDelay(1.0))
        distribution = estimate_arrival_distribution(
            delayed, "a", "c", n_samples=6000, settings=FAST, rng=0
        )
        # delays do not change WHETHER flow happens: Pr[a;c] = 0.25
        assert distribution.flow_probability == pytest.approx(0.25, abs=0.03)

    def test_fixed_delays_give_exact_arrival_times(self, chain_icm):
        delayed = DelayedICM(chain_icm, FixedDelay(2.0))
        distribution = estimate_arrival_distribution(
            delayed, "a", "c", n_samples=1500, settings=FAST, rng=1
        )
        # the only a->c route is two hops: arrival is exactly 4.0
        assert distribution.arrival_times.size > 0
        assert np.all(distribution.arrival_times == pytest.approx(4.0))
        assert distribution.mean_arrival == pytest.approx(4.0)

    def test_stochastic_delays_spread_arrivals(self, chain_icm):
        delayed = DelayedICM(chain_icm, ExponentialDelay(2.0))
        distribution = estimate_arrival_distribution(
            delayed, "a", "c", n_samples=3000, settings=FAST, rng=2
        )
        assert distribution.arrival_times.std() > 0.5
        # two exponential(2) hops: mean arrival ~ 4
        assert distribution.mean_arrival == pytest.approx(4.0, rel=0.2)

    def test_no_flow_distribution(self, triangle_icm):
        delayed = DelayedICM(triangle_icm, FixedDelay(1.0))
        distribution = estimate_arrival_distribution(
            delayed, "v3", "v1", n_samples=300, settings=FAST, rng=3
        )
        assert distribution.flow_probability == 0.0
        assert np.isnan(distribution.mean_arrival)
        assert np.isnan(distribution.quantile(0.5))

    def test_invalid_samples(self, triangle_icm):
        delayed = DelayedICM(triangle_icm, FixedDelay(1.0))
        with pytest.raises(ValueError):
            estimate_arrival_distribution(delayed, "v1", "v3", n_samples=0)


class TestDeadlineBoundedFlow:
    def test_deadline_below_min_arrival_is_zero(self, chain_icm):
        delayed = DelayedICM(chain_icm, FixedDelay(2.0))
        probability = estimate_flow_within_deadline(
            delayed, "a", "c", deadline=3.0, n_samples=2000, settings=FAST, rng=4
        )
        assert probability == 0.0

    def test_deadline_above_arrival_equals_flow_probability(self, chain_icm):
        delayed = DelayedICM(chain_icm, FixedDelay(2.0))
        probability = estimate_flow_within_deadline(
            delayed, "a", "c", deadline=10.0, n_samples=4000, settings=FAST, rng=5
        )
        assert probability == pytest.approx(0.25, abs=0.03)

    def test_monotone_in_deadline(self, chain_icm):
        delayed = DelayedICM(chain_icm, ExponentialDelay(2.0))
        values = [
            estimate_flow_within_deadline(
                delayed, "a", "c", deadline=d, n_samples=3000, settings=FAST, rng=6
            )
            for d in (1.0, 4.0, 20.0)
        ]
        assert values[0] <= values[1] + 0.02 <= values[2] + 0.04

    def test_negative_deadline_rejected(self, chain_icm):
        delayed = DelayedICM(chain_icm, FixedDelay(1.0))
        with pytest.raises(ValueError):
            estimate_flow_within_deadline(delayed, "a", "c", deadline=-1.0)
