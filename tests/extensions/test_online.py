"""Tests for the online betaICM trainer."""

import numpy as np
import pytest

from repro.core.cascade import simulate_cascade
from repro.errors import EvidenceError, ModelError
from repro.extensions.online import OnlineBetaICMTrainer
from repro.graph.digraph import DiGraph
from repro.graph.generators import random_icm
from repro.learning.attributed import train_beta_icm
from repro.learning.evidence import (
    AttributedEvidence,
    AttributedObservation,
    attributed_from_cascade,
)


def simple_observation():
    return AttributedObservation(
        sources=frozenset({"a"}),
        active_nodes=frozenset({"a", "b"}),
        active_edges=frozenset({("a", "b")}),
    )


class TestBasics:
    def test_starts_at_prior(self):
        graph = DiGraph(edges=[("a", "b")])
        trainer = OnlineBetaICMTrainer(graph)
        snapshot = trainer.snapshot()
        assert snapshot.edge_parameters("a", "b") == (1.0, 1.0)

    def test_invalid_prior(self):
        with pytest.raises(ModelError):
            OnlineBetaICMTrainer(prior_alpha=0.0)

    def test_absorb_counts(self):
        graph = DiGraph(edges=[("a", "b"), ("b", "c")])
        trainer = OnlineBetaICMTrainer(graph)
        trainer.absorb(simple_observation())
        snapshot = trainer.snapshot()
        assert snapshot.edge_parameters("a", "b") == (2.0, 1.0)
        assert snapshot.edge_parameters("b", "c") == (1.0, 2.0)
        assert trainer.n_observations == 1

    def test_unknown_structure_rejected_without_growth(self):
        trainer = OnlineBetaICMTrainer()
        with pytest.raises(EvidenceError):
            trainer.absorb(simple_observation())

    def test_grow_topology(self):
        trainer = OnlineBetaICMTrainer()
        trainer.absorb(simple_observation(), grow_topology=True)
        assert trainer.graph.has_edge("a", "b")
        assert trainer.snapshot().edge_parameters("a", "b") == (2.0, 1.0)

    def test_trainer_copy_isolated_from_input_graph(self):
        graph = DiGraph(edges=[("a", "b")])
        trainer = OnlineBetaICMTrainer(graph)
        graph.add_edge("b", "c")  # external mutation must not leak in
        assert trainer.graph.n_edges == 1


class TestEquivalenceWithBatch:
    def test_online_equals_batch(self):
        """The load-bearing invariant: streaming == batch retraining."""
        rng = np.random.default_rng(0)
        truth = random_icm(10, 30, rng=rng, probability_range=(0.1, 0.9))
        observations = []
        nodes = truth.graph.nodes()
        for _ in range(300):
            source = nodes[rng.integers(0, len(nodes))]
            cascade = simulate_cascade(truth, [source], rng=rng)
            observations.append(attributed_from_cascade(truth, cascade))

        batch = train_beta_icm(truth.graph, AttributedEvidence(observations))
        online = OnlineBetaICMTrainer(truth.graph)
        for observation in observations:
            online.absorb(observation)
        snapshot = online.snapshot()
        assert np.allclose(snapshot.alphas, batch.alphas)
        assert np.allclose(snapshot.betas, batch.betas)


class TestGrowthAndDecay:
    def test_new_edge_starts_at_prior(self):
        graph = DiGraph(edges=[("a", "b")])
        trainer = OnlineBetaICMTrainer(graph)
        trainer.absorb(simple_observation())
        trainer.add_edge("b", "c")
        snapshot = trainer.snapshot()
        assert snapshot.edge_parameters("b", "c") == (1.0, 1.0)
        assert snapshot.edge_parameters("a", "b") == (2.0, 1.0)

    def test_ensure_edge_idempotent(self):
        trainer = OnlineBetaICMTrainer(DiGraph(edges=[("a", "b")]))
        assert trainer.ensure_edge("a", "b") == 0
        assert trainer.ensure_edge("a", "c") == 1
        assert trainer.graph.n_edges == 2

    def test_decay_moves_toward_prior(self):
        graph = DiGraph(edges=[("a", "b")])
        trainer = OnlineBetaICMTrainer(graph)
        for _ in range(10):
            trainer.absorb(simple_observation())
        trainer.decay(0.5)
        snapshot = trainer.snapshot()
        alpha, beta = snapshot.edge_parameters("a", "b")
        assert alpha == pytest.approx(1.0 + 10.0 * 0.5)
        assert beta == pytest.approx(1.0)

    def test_full_decay_restores_prior(self):
        graph = DiGraph(edges=[("a", "b")])
        trainer = OnlineBetaICMTrainer(graph)
        trainer.absorb(simple_observation())
        trainer.decay(0.0)
        assert trainer.snapshot().edge_parameters("a", "b") == (1.0, 1.0)

    def test_decay_bounds(self):
        trainer = OnlineBetaICMTrainer()
        with pytest.raises(ValueError):
            trainer.decay(1.5)

    def test_expected_icm_tracks_counts(self):
        graph = DiGraph(edges=[("a", "b")])
        trainer = OnlineBetaICMTrainer(graph)
        for _ in range(3):
            trainer.absorb(simple_observation())
        assert trainer.expected_icm().probability("a", "b") == pytest.approx(0.8)


class TestNodeChurnScenario:
    def test_growing_network_stays_consistent(self):
        """A realistic stream: new users join mid-stream; estimates for old
        edges are unaffected and new edges learn from their own evidence."""
        trainer = OnlineBetaICMTrainer()
        old = AttributedObservation(
            frozenset({"a"}), frozenset({"a", "b"}), frozenset({("a", "b")})
        )
        for _ in range(30):
            trainer.absorb(old, grow_topology=True)
        before = trainer.snapshot().mean("a", "b")
        # user c joins; a starts reaching c half the time
        hit = AttributedObservation(
            frozenset({"a"}),
            frozenset({"a", "b", "c"}),
            frozenset({("a", "b"), ("a", "c")}),
        )
        miss = AttributedObservation(
            frozenset({"a"}), frozenset({"a", "b"}), frozenset({("a", "b")})
        )
        trainer.ensure_edge("a", "c")
        for _ in range(20):
            trainer.absorb(hit)
            trainer.absorb(miss)
        snapshot = trainer.snapshot()
        assert snapshot.mean("a", "c") == pytest.approx(0.5, abs=0.05)
        assert snapshot.mean("a", "b") >= before  # only gained evidence

    def test_decay_tracks_regime_change(self):
        """With decay, the model follows a drifting edge probability."""
        graph = DiGraph(edges=[("a", "b")])
        trainer = OnlineBetaICMTrainer(graph)
        fire = AttributedObservation(
            frozenset({"a"}), frozenset({"a", "b"}), frozenset({("a", "b")})
        )
        quiet = AttributedObservation(
            frozenset({"a"}), frozenset({"a"}), frozenset()
        )
        for _ in range(50):
            trainer.absorb(fire)  # regime 1: p ~ 1
        for _ in range(50):
            trainer.decay(0.9)
            trainer.absorb(quiet)  # regime 2: p ~ 0
        drifted = trainer.expected_icm().probability("a", "b")
        assert drifted < 0.25

        stale = OnlineBetaICMTrainer(graph)
        for _ in range(50):
            stale.absorb(fire)
        for _ in range(50):
            stale.absorb(quiet)  # no decay: anchored at ~0.5
        anchored = stale.expected_icm().probability("a", "b")
        assert drifted < anchored - 0.15


class TestResumeFromBetaICM:
    def test_resume_continues_existing_counts(self):
        graph = DiGraph(edges=[("a", "b"), ("b", "c")])
        first = OnlineBetaICMTrainer(graph)
        first.absorb(simple_observation())
        resumed = OnlineBetaICMTrainer.from_beta_icm(first.snapshot())
        resumed.absorb(simple_observation())

        straight = OnlineBetaICMTrainer(graph)
        straight.absorb(simple_observation())
        straight.absorb(simple_observation())
        for pair in [("a", "b"), ("b", "c")]:
            assert resumed.snapshot().edge_parameters(*pair) == (
                straight.snapshot().edge_parameters(*pair)
            )

    def test_resume_matches_batch_on_split_evidence(self):
        """Seed from a batch-trained posterior, stream the rest: same result."""
        truth = random_icm(15, 45, rng=4)
        observations = []
        for seed in range(20):
            cascade = simulate_cascade(
                truth, [truth.graph.nodes()[seed % 15]], rng=seed
            )
            observations.append(attributed_from_cascade(truth, cascade))

        head = train_beta_icm(
            truth.graph.copy(), AttributedEvidence(observations[:12])
        )
        trainer = OnlineBetaICMTrainer.from_beta_icm(head)
        for observation in observations[12:]:
            trainer.absorb(observation)
        everything = train_beta_icm(
            truth.graph.copy(), AttributedEvidence(observations)
        )
        assert np.array_equal(trainer.snapshot().alphas, everything.alphas)
        assert np.array_equal(trainer.snapshot().betas, everything.betas)

    def test_resume_does_not_alias_the_source_model(self):
        graph = DiGraph(edges=[("a", "b")])
        source = OnlineBetaICMTrainer(graph).snapshot()
        trainer = OnlineBetaICMTrainer.from_beta_icm(source)
        trainer.absorb(
            AttributedObservation(
                frozenset({"a"}), frozenset({"a", "b"}), frozenset({("a", "b")})
            )
        )
        # the seeded model's arrays are untouched (MUT001's contract)
        assert source.edge_parameters("a", "b") == (1.0, 1.0)
        assert trainer.snapshot().edge_parameters("a", "b") == (2.0, 1.0)
