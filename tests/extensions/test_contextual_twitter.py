"""End-to-end: the contextual extension learns the paper's conjecture.

The paper attributes Fig. 2(a)'s low-end overestimation to users being
"more likely to retweet an original message than a retweet".  With the
simulator's ``forwarded_retweet_factor`` the conjecture becomes ground
truth; counting each cascade hop under its context (parent is the
originator vs a forwarder) lets :class:`ContextualBetaICM` recover both
regimes, where a context-blind betaICM inevitably blends them.
"""

import numpy as np
import pytest

from repro.extensions.contextual import ContextualBetaICM
from repro.twitter.simulator import SyntheticTwitter, TwitterConfig

FACTOR = 0.3


@pytest.fixture(scope="module")
def contextual_world():
    config = TwitterConfig(
        n_users=40,
        n_follow_edges=240,
        message_kind_weights=(1.0, 0.0, 0.0),
        high_fraction=0.3,
        high_params=(8.0, 4.0),
        low_params=(2.0, 8.0),
        forwarded_retweet_factor=FACTOR,
    )
    service = SyntheticTwitter(config, rng=50)
    _dataset, records = service.generate(2500, rng=51)
    return service, records


def count_hops_by_context(service, records):
    """Per (edge, context) Bernoulli counts from the ground-truth cascades.

    Every active node tried each of its out-edges exactly once; the
    context of those trials is whether the node originated the message.
    """
    graph = service.influence_graph
    counts = {
        "original": ({}, {}),  # activations, non_activations
        "forwarded": ({}, {}),
    }
    for record in records:
        if record.kind != "plain":
            continue
        cascade = record.cascade
        for node in cascade.active_nodes:
            context = "original" if node in cascade.sources else "forwarded"
            activations, non_activations = counts[context]
            for edge_index in graph.out_edge_indices(node):
                pair = graph.edge(edge_index).as_pair()
                if edge_index in cascade.active_edges:
                    activations[pair] = activations.get(pair, 0) + 1
                else:
                    non_activations[pair] = non_activations.get(pair, 0) + 1
    return counts


@pytest.fixture(scope="module")
def trained(contextual_world):
    service, records = contextual_world
    counts = count_hops_by_context(service, records)
    model = ContextualBetaICM(
        service.influence_graph,
        ["original", "forwarded"],
        default_context="original",
    )
    for context, (activations, non_activations) in counts.items():
        model.observe(context, activations, non_activations)
    return model


class TestContextualRecovery:
    def _ratios(self, service, model, context):
        truth = service.retweet_model
        ratios = []
        for edge in service.influence_graph.iter_edges():
            alpha, beta = model.beta_icm(context).edge_parameters(
                edge.src, edge.dst
            )
            p_true = truth.probability(edge.src, edge.dst)
            if alpha + beta < 20 or p_true < 0.05:
                continue
            ratios.append(model.mean(edge.src, edge.dst, context) / p_true)
        return ratios

    def test_original_context_tracks_base_probability(
        self, contextual_world, trained
    ):
        service, _records = contextual_world
        ratios = self._ratios(service, trained, "original")
        assert len(ratios) >= 10
        assert np.median(ratios) == pytest.approx(1.0, abs=0.2)

    def test_forwarded_context_tracks_damped_probability(
        self, contextual_world, trained
    ):
        service, _records = contextual_world
        ratios = self._ratios(service, trained, "forwarded")
        assert len(ratios) >= 10
        assert np.median(ratios) == pytest.approx(FACTOR, abs=0.15)

    def test_divergence_flags_context_dependent_edges(
        self, contextual_world, trained
    ):
        service, _records = contextual_world
        truth = service.retweet_model
        divergences = []
        for edge in service.influence_graph.iter_edges():
            alpha_o, beta_o = trained.beta_icm("original").edge_parameters(
                edge.src, edge.dst
            )
            alpha_f, beta_f = trained.beta_icm("forwarded").edge_parameters(
                edge.src, edge.dst
            )
            if alpha_o + beta_o < 30 or alpha_f + beta_f < 30:
                continue
            if truth.probability(edge.src, edge.dst) < 0.3:
                continue
            divergences.append(trained.context_divergence(edge.src, edge.dst))
        assert divergences
        # strong edges lose ~70% of their probability when forwarding:
        # the divergence detector must light up
        assert np.median(divergences) > 0.15

    def test_context_blind_counting_blends_the_regimes(self, contextual_world):
        """Pooling both contexts lands strictly between the two truths --
        the averaging the paper suspects behind Fig. 2(a)."""
        service, records = contextual_world
        counts = count_hops_by_context(service, records)
        pooled = ContextualBetaICM(service.influence_graph, ["all"])
        for _context, (activations, non_activations) in counts.items():
            pooled.observe("all", activations, non_activations)
        truth = service.retweet_model
        ratios = []
        for edge in service.influence_graph.iter_edges():
            alpha, beta = pooled.beta_icm("all").edge_parameters(
                edge.src, edge.dst
            )
            p_true = truth.probability(edge.src, edge.dst)
            if alpha + beta < 40 or p_true < 0.05:
                continue
            ratios.append(pooled.mean(edge.src, edge.dst, "all") / p_true)
        assert ratios
        blended = float(np.median(ratios))
        assert FACTOR + 0.05 < blended < 0.95
