"""Tests for context-dependent activation probabilities."""

import pytest

from repro.errors import EvidenceError, ModelError
from repro.extensions.contextual import (
    ContextualBetaICM,
    ContextualObservation,
    train_contextual_beta_icm,
)
from repro.graph.digraph import DiGraph
from repro.learning.evidence import AttributedObservation


@pytest.fixture
def graph():
    return DiGraph(edges=[("a", "b"), ("b", "c")])


def observation(active_edges):
    nodes = {"a"}
    for src, dst in active_edges:
        nodes.add(src)
        nodes.add(dst)
    return AttributedObservation(
        sources=frozenset({"a"}),
        active_nodes=frozenset(nodes),
        active_edges=frozenset(active_edges),
    )


class TestContextualBetaICM:
    def test_contexts_start_uniform(self, graph):
        model = ContextualBetaICM(graph, ["original", "forwarded"])
        assert model.mean("a", "b", "original") == 0.5
        assert model.contexts == ["original", "forwarded"]

    def test_default_context(self, graph):
        model = ContextualBetaICM(
            graph, ["x", "y"], default_context="y"
        )
        assert model.default_context == "y"
        model.observe("y", {("a", "b"): 4}, {})
        assert model.mean("a", "b") == pytest.approx(5.0 / 6.0)

    def test_unknown_context_rejected(self, graph):
        model = ContextualBetaICM(graph, ["x"])
        with pytest.raises(ModelError, match="unknown context"):
            model.beta_icm("z")

    def test_bad_default_rejected(self, graph):
        with pytest.raises(ModelError):
            ContextualBetaICM(graph, ["x"], default_context="z")

    def test_no_contexts_rejected(self, graph):
        with pytest.raises(ModelError):
            ContextualBetaICM(graph, [])

    def test_contexts_are_independent(self, graph):
        model = ContextualBetaICM(graph, ["x", "y"])
        model.observe("x", {("a", "b"): 10}, {})
        assert model.mean("a", "b", "x") > 0.9
        assert model.mean("a", "b", "y") == 0.5

    def test_context_divergence(self, graph):
        model = ContextualBetaICM(graph, ["x", "y"])
        model.observe("x", {("a", "b"): 18}, {})
        model.observe("y", {}, {("a", "b"): 18})
        divergence = model.context_divergence("a", "b")
        assert divergence == pytest.approx(0.9, abs=0.02)
        assert model.context_divergence("b", "c") == 0.0


class TestTraining:
    def test_per_context_counting(self, graph):
        observations = [
            ContextualObservation("original", observation({("a", "b")})),
            ContextualObservation("original", observation({("a", "b")})),
            ContextualObservation("forwarded", observation(set())),
        ]
        model = train_contextual_beta_icm(graph, observations)
        original = model.beta_icm("original")
        forwarded = model.beta_icm("forwarded")
        assert original.edge_parameters("a", "b") == (3.0, 1.0)
        # forwarded context: a active once, edge never fired
        assert forwarded.edge_parameters("a", "b") == (1.0, 2.0)

    def test_paper_retweet_example(self, graph):
        """'Different retweet distributions when not quoting the
        originating user': the same edge learns different probabilities."""
        quoting = [
            ContextualObservation("quoting", observation({("a", "b")}))
            for _ in range(9)
        ] + [ContextualObservation("quoting", observation(set()))]
        not_quoting = [
            ContextualObservation("not_quoting", observation(set()))
            for _ in range(9)
        ] + [ContextualObservation("not_quoting", observation({("a", "b")}))]
        model = train_contextual_beta_icm(graph, quoting + not_quoting)
        assert model.mean("a", "b", "quoting") > 0.8
        assert model.mean("a", "b", "not_quoting") < 0.2
        assert model.context_divergence("a", "b") > 0.6

    def test_empty_stream_rejected(self, graph):
        with pytest.raises(EvidenceError):
            train_contextual_beta_icm(graph, [])

    def test_query_via_expected_icm(self, graph):
        observations = [
            ContextualObservation("x", observation({("a", "b"), ("b", "c")}))
        ]
        model = train_contextual_beta_icm(graph, observations)
        icm = model.expected_icm("x")
        assert icm.probability("a", "b") == pytest.approx(2.0 / 3.0)
