"""Smoke tests: the fast experiment harnesses run end-to-end in the suite.

The heavyweight harnesses (Figs. 1, 2, 7-10, Table III) are exercised by
`pytest benchmarks/ --benchmark-only`; these are the ones cheap enough to
run on every `pytest tests/` invocation, keeping the experiments package
from rotting between benchmark runs.
"""

import numpy as np

from repro.experiments import (
    fig06_timing,
    fig11_multimodal,
    table1_summary,
    table2_multimodal_evidence,
)


class TestTable1:
    def test_run_and_report(self):
        result = table1_summary.run()
        assert result.match
        text = table1_summary.report(result)
        assert "Table I" in text
        assert "50" in text  # the big characteristic's count


class TestTable2:
    def test_run_and_report(self):
        summary = table2_multimodal_evidence.run()
        assert summary.n_observations == 300
        text = table2_multimodal_evidence.report(summary)
        assert "Table II" in text

    def test_analytic_mle_solves_the_system(self):
        """(0.5, 0, 0.5) satisfies all three leak-rate equations."""
        a, b, c = table2_multimodal_evidence.ANALYTIC_MLE
        assert 1 - (1 - a) * (1 - b) == 0.5
        assert 1 - (1 - b) * (1 - c) == 0.5
        assert 1 - (1 - a) * (1 - b) * (1 - c) == 0.75


class TestFig6Smoke:
    def test_quick_run(self):
        result = fig06_timing.run(scale="quick", rng=0)
        assert result.points
        for point in result.points:
            assert point.goyal_seconds > 0.0
            assert point.ours_core_seconds > 0.0
            assert point.n_characteristics <= point.n_objects
        text = fig06_timing.report(result)
        assert "omega" in text


class TestFig11Smoke:
    def test_reduced_run(self):
        # smaller than the quick scale: enough to exercise the code path
        from repro.experiments.table2_multimodal_evidence import table2_summary
        from repro.learning.joint_bayes import fit_sink_posterior
        from repro.learning.saito_em import fit_sink_em_restarts

        summary = table2_summary()
        em = fit_sink_em_restarts(summary, n_restarts=5, rng=0)
        posterior = fit_sink_posterior(summary, n_samples=300, burn_in=300, rng=1)
        em_points = np.array([r.probabilities for r in em])
        assert em_points.std(axis=0).max() < posterior.samples.std(axis=0).min() * 5

    def test_report_renders(self):
        result = fig11_multimodal.run(scale="quick", rng=3)
        text = fig11_multimodal.report(result)
        assert "Bayes std" in text
        assert "corr" in text
