"""Tests for shared experiment machinery."""

import numpy as np
import pytest

from repro.core.beta_icm import BetaICM
from repro.core.icm import ICM
from repro.experiments.common import (
    Scale,
    build_twitter_world,
    resolve_scale,
    restrict_beta_icm,
    restrict_icm,
    synthetic_bucket_pairs,
    unattributed_star_evidence,
)
from repro.graph.digraph import DiGraph
from repro.mcmc.chain import ChainSettings
from repro.twitter.simulator import TwitterConfig


class TestScale:
    def test_resolve_strings(self):
        assert resolve_scale("quick").name == "quick"
        assert resolve_scale("paper").is_paper

    def test_resolve_instance_passthrough(self):
        scale = Scale("quick")
        assert resolve_scale(scale) is scale

    def test_bad_scale(self):
        with pytest.raises(ValueError):
            resolve_scale("huge")

    def test_pick(self):
        assert Scale("quick").pick(quick=1, paper=2) == 1
        assert Scale("paper").pick(quick=1, paper=2) == 2


class TestSyntheticBucketPairs:
    def test_pair_count_and_validity(self):
        pairs = synthetic_bucket_pairs(
            20,
            n_nodes=10,
            n_edges=30,
            mh_samples=80,
            settings=ChainSettings(burn_in=50, thinning=1),
            rng=0,
        )
        assert len(pairs) == 20
        for pair in pairs:
            assert 0.0 <= pair.estimate <= 1.0

    def test_rwr_estimator(self):
        pairs = synthetic_bucket_pairs(
            5, n_nodes=10, n_edges=30, estimator="rwr", rng=1
        )
        assert len(pairs) == 5

    def test_unknown_estimator(self):
        with pytest.raises(ValueError):
            synthetic_bucket_pairs(1, n_nodes=5, n_edges=5, estimator="magic")

    def test_reproducible(self):
        kwargs = dict(
            n_nodes=8,
            n_edges=20,
            mh_samples=50,
            settings=ChainSettings(burn_in=20, thinning=0),
        )
        a = synthetic_bucket_pairs(5, rng=7, **kwargs)
        b = synthetic_bucket_pairs(5, rng=7, **kwargs)
        assert [(p.estimate, p.outcome) for p in a] == [
            (p.estimate, p.outcome) for p in b
        ]


class TestTwitterWorld:
    def test_train_and_test_from_same_truth(self):
        config = TwitterConfig(n_users=20, n_follow_edges=60)
        world = build_twitter_world(config, n_train=30, n_test=20)
        assert len(world.train_records) == 30
        assert len(world.test_records) == 20
        assert world.service.influence_graph.n_edges == 60


class TestStarEvidence:
    def test_counts(self):
        truth, evidence = unattributed_star_evidence([0.3, 0.7], 50, rng=0)
        assert len(evidence) == 50
        assert truth.n_edges == 2

    def test_sources_are_parents(self):
        _truth, evidence = unattributed_star_evidence([0.5, 0.5, 0.5], 30, rng=1)
        for trace in evidence:
            assert trace.sources <= {"u0", "u1", "u2"}


class TestRestriction:
    @pytest.fixture
    def beta_model(self):
        graph = DiGraph(edges=[("a", "b"), ("b", "c"), ("a", "c")])
        return BetaICM(graph, [2.0, 3.0, 4.0], [5.0, 6.0, 7.0])

    def test_restrict_beta_icm(self, beta_model):
        sub = restrict_beta_icm(beta_model, ["a", "b"])
        assert sub.n_edges == 1
        assert sub.edge_parameters("a", "b") == (2.0, 5.0)

    def test_restrict_icm(self):
        graph = DiGraph(edges=[("a", "b"), ("b", "c")])
        model = ICM(graph, [0.3, 0.9])
        sub = restrict_icm(model, ["b", "c"])
        assert sub.n_edges == 1
        assert sub.probability("b", "c") == 0.9
