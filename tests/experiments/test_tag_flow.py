"""Tests for the shared unattributed Twitter flow harness."""

import pytest

from repro.core.cascade import CascadeResult
from repro.experiments.common import build_twitter_world
from repro.experiments.tag_flow import (
    adopters_of,
    flow_pairs_for_focus,
    interesting_originators,
    restrict_traces,
    train_focus_models,
)
from repro.learning.evidence import ActivationTrace, UnattributedEvidence
from repro.mcmc.chain import ChainSettings
from repro.twitter.simulator import MessageRecord, TwitterConfig
from repro.twitter.unattributed import OMNIPOTENT_USER


class TestRestrictTraces:
    def test_foreign_nodes_dropped(self):
        evidence = UnattributedEvidence(
            [ActivationTrace({"a": 0, "b": 1, "x": 2}, frozenset({"a"}))]
        )
        restricted = restrict_traces(evidence, {"a", "b"})
        assert len(restricted) == 1
        assert restricted[0].active_nodes == frozenset({"a", "b"})

    def test_traces_without_sources_dropped(self):
        evidence = UnattributedEvidence(
            [ActivationTrace({"a": 0, "b": 1}, frozenset({"a"}))]
        )
        restricted = restrict_traces(evidence, {"b"})
        assert len(restricted) == 0


class TestAdopters:
    def test_includes_offline(self):
        record = MessageRecord(
            kind="hashtag",
            key="#x",
            author="u1",
            cascade=CascadeResult(
                sources=frozenset({"u1"}),
                active_nodes=frozenset({"u1", "u2"}),
                active_edges=frozenset(),
            ),
            offline_adopters=("u9",),
            origin_time=0,
        )
        assert adopters_of(record) == {"u1", "u2", "u9"}


@pytest.fixture(scope="module")
def small_world():
    config = TwitterConfig(
        n_users=25,
        n_follow_edges=120,
        message_kind_weights=(0.0, 0.0, 1.0),
        high_fraction=0.15,
        high_params=(6.0, 6.0),
        low_params=(1.5, 12.0),
    )
    return build_twitter_world(config, n_train=120, n_test=120, structure_seed=3)


class TestEndToEnd:
    def test_interesting_originators_ranked(self, small_world):
        originators = interesting_originators(
            small_world.train_records, "url", 5
        )
        assert 0 < len(originators) <= 5

    def test_train_and_pair_generation(self, small_world):
        focus = interesting_originators(small_world.train_records, "url", 1)[0]
        models = train_focus_models(
            small_world, focus, "url", radius=4, posterior_samples=80, rng=0
        )
        assert models is not None
        assert OMNIPOTENT_USER in models.subgraph
        assert focus not in models.members
        pairs = flow_pairs_for_focus(
            models,
            small_world.test_records,
            "url",
            models.joint_bayes.to_icm(),
            mh_samples=60,
            settings=ChainSettings(burn_in=60, thinning=1),
            rng=1,
        )
        n_objects = sum(
            1
            for record in small_world.test_records
            if record.kind == "url" and record.author == focus
        )
        assert len(pairs) == n_objects * len(models.members)
