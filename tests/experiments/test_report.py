"""Tests for ASCII report rendering."""

import numpy as np
import pytest

from repro.evaluation.bucket import PredictionPair, bucket_experiment
from repro.experiments.report import (
    ascii_table,
    bar,
    bucket_table,
    histogram_table,
    series_table,
)


class TestAsciiTable:
    def test_headers_and_rows(self):
        text = ascii_table(["x", "value"], [(1, 0.5), (2, 0.25)])
        lines = text.splitlines()
        assert "x" in lines[0] and "value" in lines[0]
        assert "0.5000" in text
        assert len(lines) == 4

    def test_title(self):
        text = ascii_table(["a"], [(1,)], title="My Title")
        assert text.splitlines()[0] == "My Title"

    def test_column_widths_accommodate_long_cells(self):
        text = ascii_table(["h"], [("a-very-long-cell",)])
        header, sep, row = text.splitlines()
        assert len(header) == len(row)


class TestBar:
    def test_full_and_empty(self):
        assert bar(1.0, 1.0, width=4) == "████"
        assert bar(0.0, 1.0, width=4) == ""

    def test_zero_max(self):
        assert bar(1.0, 0.0) == ""

    def test_clamps_overflow(self):
        assert bar(5.0, 1.0, width=3) == "███"


class TestHistogramTable:
    def test_counts_sum(self):
        values = [0.1, 0.15, 0.9]
        text = histogram_table(values, n_bins=10)
        assert "2" in text  # two values in the 0.1 bin
        assert text.count("\n") >= 10

    def test_bad_bins(self):
        with pytest.raises(ValueError):
            histogram_table([0.5], n_bins=0)


class TestBucketTable:
    def test_renders_occupied_bins(self):
        rng = np.random.default_rng(0)
        pairs = [
            PredictionPair(float(p), bool(rng.random() < p))
            for p in rng.random(200)
        ]
        result = bucket_experiment(pairs, n_bins=10)
        text = bucket_table(result, title="demo")
        assert text.startswith("demo")
        assert "volume" in text
        # one row per occupied bin (+2 header rows +1 title)
        assert len(text.splitlines()) == len(result.occupied_bins) + 3


class TestSeriesTable:
    def test_multi_series(self):
        text = series_table(
            "n", [10, 100], [("ours", [0.2, 0.1]), ("theirs", [0.3, 0.3])]
        )
        assert "ours" in text and "theirs" in text
        assert "0.1000" in text
