"""Tests for the experiment registry and CLI plumbing."""

import pytest

from repro.experiments.registry import EXPERIMENTS, get_experiment


class TestRegistry:
    def test_every_paper_artifact_registered(self):
        expected = {f"fig{i}" for i in range(1, 12)} | {
            "table1",
            "table2",
            "table3",
        }
        assert set(EXPERIMENTS) == expected

    def test_modules_import_and_expose_run_report(self):
        for name in EXPERIMENTS:
            module = get_experiment(name)
            assert callable(module.run), name
            assert callable(module.report), name

    def test_unknown_experiment(self):
        with pytest.raises(ValueError, match="unknown experiment"):
            get_experiment("fig99")


class TestCli:
    def test_unknown_choice_rejected(self, capsys):
        from repro.experiments.cli import main

        with pytest.raises(SystemExit):
            main(["not-an-experiment"])

    def test_runs_selected_experiment(self, monkeypatch, capsys):
        from repro.experiments import cli, table1_summary

        calls = {}
        original_run = table1_summary.run

        def fake_run(scale, rng):
            calls["args"] = (scale, rng)
            return original_run()

        monkeypatch.setattr(table1_summary, "run", fake_run)
        assert cli.main(["table1", "--scale", "quick", "--seed", "3"]) == 0
        assert calls["args"] == ("quick", 3)
        output = capsys.readouterr().out
        assert "Table I" in output
        assert "finished in" in output

    def test_experiment_ordering(self):
        from repro.experiments.cli import _experiment_order

        names = sorted(EXPERIMENTS, key=_experiment_order)
        assert names[0] == "fig1"
        assert names[-1] == "table3"
        assert names.index("fig2") < names.index("fig10")


class TestCliList:
    def test_list_prints_every_experiment(self, capsys):
        from repro.experiments.cli import main

        assert main(["--list"]) == 0
        output = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in output
        assert "Fig. 7" in output

    def test_missing_experiment_errors(self):
        from repro.experiments.cli import main

        with pytest.raises(SystemExit):
            main([])
