"""Model registry fingerprint resolution and the LRU result cache."""

import pytest

from repro.core import model_fingerprint
from repro.errors import ServiceError
from repro.graph.generators import random_beta_icm, random_icm
from repro.service.cache import ResultCache
from repro.service.registry import ModelRegistry


class TestModelRegistry:
    def test_register_and_get(self):
        registry = ModelRegistry()
        model = random_icm(10, 30, rng=0)
        fingerprint = registry.register("m", model)
        assert fingerprint == model_fingerprint(model)
        assert registry.get("m") is model
        assert "m" in registry
        assert len(registry) == 1
        assert registry.names() == ["m"]

    def test_unknown_name_raises_with_known_names(self):
        registry = ModelRegistry()
        registry.register("known", random_icm(5, 10, rng=0))
        with pytest.raises(ServiceError, match="known"):
            registry.get("missing")

    def test_empty_name_rejected(self):
        registry = ModelRegistry()
        with pytest.raises(ServiceError, match="non-empty"):
            registry.register("", random_icm(5, 10, rng=0))

    def test_reregistration_changes_fingerprint(self):
        registry = ModelRegistry()
        model = random_icm(10, 30, rng=0)
        first = registry.register("m", model)
        probabilities = model.edge_probabilities.copy()
        probabilities[0] = 1.0 - probabilities[0]
        second = registry.register("m", model.with_probabilities(probabilities))
        assert first != second
        assert registry.stored_fingerprint("m") == second

    def test_fingerprint_detects_in_place_mutation(self):
        registry = ModelRegistry()
        model = random_beta_icm(10, 30, rng=0)
        original = registry.register("m", model)
        current, previous = registry.fingerprint("m")
        assert current == original and previous is None
        model._alphas[0] += 2.0
        current, previous = registry.fingerprint("m")
        assert previous == original
        assert current != original
        # the new hash is now the stored one; a second resolve is clean
        assert registry.fingerprint("m") == (current, None)

    def test_unregister(self):
        registry = ModelRegistry()
        fingerprint = registry.register("m", random_icm(5, 10, rng=0))
        assert registry.unregister("m") == fingerprint
        assert "m" not in registry
        with pytest.raises(ServiceError):
            registry.unregister("m")

    def test_publish_swaps_model_and_reports_previous(self):
        registry = ModelRegistry()
        model = random_icm(10, 30, rng=0)
        original = registry.register("m", model)
        probabilities = model.edge_probabilities.copy()
        probabilities[0] = 1.0 - probabilities[0]
        updated = model.with_probabilities(probabilities)
        fingerprint, previous = registry.publish("m", updated)
        assert previous == original
        assert fingerprint == model_fingerprint(updated)
        assert registry.get("m") is updated
        assert registry.stored_fingerprint("m") == fingerprint

    def test_publish_identical_content_reports_no_delta(self):
        registry = ModelRegistry()
        model = random_icm(10, 30, rng=0)
        original = registry.register("m", model)
        copy = model.with_probabilities(model.edge_probabilities.copy())
        fingerprint, previous = registry.publish("m", copy)
        assert fingerprint == original
        assert previous is None
        assert registry.get("m") is copy  # swap still happened

    def test_publish_requires_registration(self):
        registry = ModelRegistry()
        with pytest.raises(ServiceError, match="missing"):
            registry.publish("missing", random_icm(5, 10, rng=0))


class TestResultCache:
    def test_hit_miss_accounting(self):
        cache = ResultCache(max_entries=4)
        assert cache.get("fp", "k") is None
        cache.put("fp", "k", 42)
        assert cache.get("fp", "k") == 42
        assert cache.hits == 1 and cache.misses == 1

    def test_lru_eviction_order(self):
        cache = ResultCache(max_entries=2)
        cache.put("fp", "a", 1)
        cache.put("fp", "b", 2)
        assert cache.get("fp", "a") == 1  # refresh a
        cache.put("fp", "c", 3)  # evicts b
        assert cache.get("fp", "b") is None
        assert cache.get("fp", "a") == 1
        assert cache.get("fp", "c") == 3
        assert len(cache) == 2

    def test_invalidate_fingerprint_only_hits_that_model(self):
        cache = ResultCache()
        cache.put("fp1", "a", 1)
        cache.put("fp1", "b", 2)
        cache.put("fp2", "a", 3)
        assert cache.invalidate_fingerprint("fp1") == 2
        assert cache.get("fp1", "a") is None
        assert cache.get("fp2", "a") == 3

    def test_purge_fingerprint_frees_capacity(self):
        cache = ResultCache(max_entries=3)
        cache.put("old", "a", 1)
        cache.put("old", "b", 2)
        cache.put("keep", "a", 3)
        assert cache.purge_fingerprint("old") == 2
        assert len(cache) == 1
        assert cache.purged == 2
        # the freed slots are immediately reusable: filling back to
        # capacity must not evict the surviving entry
        cache.put("new", "a", 4)
        cache.put("new", "b", 5)
        assert len(cache) == 3
        assert cache.get("keep", "a") == 3
        assert cache.snapshot()["purged"] == 2

    def test_purge_unknown_fingerprint_is_a_noop(self):
        cache = ResultCache()
        cache.put("fp", "a", 1)
        assert cache.purge_fingerprint("absent") == 0
        assert cache.purged == 0
        assert len(cache) == 1

    def test_invalidate_fingerprint_counts_as_purged(self):
        cache = ResultCache()
        cache.put("fp", "a", 1)
        assert cache.invalidate_fingerprint("fp") == 1
        assert cache.purged == 1

    def test_clear(self):
        cache = ResultCache()
        cache.put("fp", "a", 1)
        assert cache.clear() == 1
        assert len(cache) == 0

    def test_rejects_non_positive_capacity(self):
        with pytest.raises(ValueError, match="max_entries"):
            ResultCache(max_entries=0)
