"""Growth policies: geometric compatibility, adaptive ESS-aware growth."""

import math

import numpy as np
import pytest

from repro.graph.generators import random_icm
from repro.mcmc.chain import ChainSettings
from repro.service.bank import SampleBank
from repro.service.growth import (
    AdaptiveEssGrowthPolicy,
    GeometricGrowthPolicy,
    GrowthRecord,
)


class FakeBankView:
    """Minimal GrowthBankView for policy unit tests."""

    def __init__(
        self,
        n_samples=0,
        initial_samples=256,
        growth_factor=2.0,
        max_samples=65_536,
        ess=0.0,
        history=(),
    ):
        self.n_samples = n_samples
        self.initial_samples = initial_samples
        self.growth_factor = growth_factor
        self.max_samples = max_samples
        self._ess = ess
        self._history = tuple(history)

    def ess(self):
        return self._ess

    def growth_history(self):
        return self._history


def record(n_new, n_samples, ess_before, ess_after, seconds):
    return GrowthRecord(
        n_new=n_new,
        n_samples=n_samples,
        ess_before=ess_before,
        ess_after=ess_after,
        seconds=seconds,
    )


class TestGrowthRecord:
    def test_derived_rates(self):
        growth = record(100, 200, 10.0, 30.0, 2.0)
        assert growth.marginal_ess == pytest.approx(20.0)
        assert growth.ess_per_sample == pytest.approx(0.2)
        assert growth.ess_per_second == pytest.approx(10.0)

    def test_degenerate_denominators(self):
        assert math.isnan(record(0, 0, 0.0, 0.0, 1.0).ess_per_sample)
        assert record(10, 10, 0.0, 5.0, 0.0).ess_per_second == math.inf


class TestGeometricPolicy:
    def test_initial_fill_on_empty_bank(self):
        policy = GeometricGrowthPolicy()
        bank = FakeBankView(n_samples=0, initial_samples=256)
        assert policy.next_increment(bank, 100.0) == 256

    def test_stops_at_target(self):
        policy = GeometricGrowthPolicy()
        bank = FakeBankView(n_samples=256, ess=150.0)
        assert policy.next_increment(bank, 100.0) == 0

    def test_stops_at_cap(self):
        policy = GeometricGrowthPolicy()
        bank = FakeBankView(n_samples=512, max_samples=512, ess=10.0)
        assert policy.next_increment(bank, 100.0) == 0

    def test_doubles_below_target(self):
        policy = GeometricGrowthPolicy()
        bank = FakeBankView(n_samples=256, growth_factor=2.0, ess=10.0)
        assert policy.next_increment(bank, 100.0) == 256

    def test_increment_never_zero_mid_growth(self):
        policy = GeometricGrowthPolicy()
        bank = FakeBankView(n_samples=3, growth_factor=1.1, ess=0.5)
        assert policy.next_increment(bank, 100.0) == 1


class TestAdaptivePolicyUnit:
    def test_parameter_validation(self):
        with pytest.raises(ValueError, match="min_ess_per_second"):
            AdaptiveEssGrowthPolicy(min_ess_per_second=-1.0)
        with pytest.raises(ValueError, match="safety"):
            AdaptiveEssGrowthPolicy(safety=0.0)
        with pytest.raises(ValueError, match="min_increment"):
            AdaptiveEssGrowthPolicy(min_increment=0)

    def test_initial_fill_and_stops(self):
        policy = AdaptiveEssGrowthPolicy()
        assert policy.next_increment(FakeBankView(n_samples=0), 50.0) == 256
        met = FakeBankView(n_samples=256, ess=60.0)
        assert policy.next_increment(met, 50.0) == 0
        capped = FakeBankView(n_samples=512, max_samples=512, ess=10.0)
        assert policy.next_increment(capped, 50.0) == 0

    def test_futility_stop_on_collapsed_rate(self):
        """Once marginal ESS/second falls below the floor, stop growing
        even though the target is unmet."""
        policy = AdaptiveEssGrowthPolicy(min_ess_per_second=100.0)
        slow = FakeBankView(
            n_samples=512,
            ess=20.0,
            history=[record(256, 512, 19.0, 20.0, 10.0)],  # 0.1 ess/s
        )
        assert policy.next_increment(slow, 200.0) == 0

    def test_extrapolates_from_marginal_rate(self):
        # last growth: 0.5 ess/sample; 10 ess short; safety 1.25 -> 25,
        # clamped up to min_increment=32.
        policy = AdaptiveEssGrowthPolicy(min_increment=32, safety=1.25)
        bank = FakeBankView(
            n_samples=512,
            ess=90.0,
            history=[record(256, 512, 0.0, 90.0, 1.0)],
        )
        # marginal rate 90/256 ess/sample; shortfall 10 -> ~36 samples.
        increment = policy.next_increment(bank, 100.0)
        assert 32 <= increment <= 512  # never exceeds the geometric step
        expected = math.ceil(10.0 / (90.0 / 256.0) * 1.25)
        assert increment == max(expected, 32)

    def test_increment_capped_by_geometric_envelope(self):
        # A tiny marginal rate would extrapolate a huge increment; the
        # geometric step bounds it.
        policy = AdaptiveEssGrowthPolicy()
        bank = FakeBankView(
            n_samples=512,
            growth_factor=2.0,
            ess=1.0,
            history=[record(256, 512, 0.999, 1.0, 1.0)],
        )
        assert policy.next_increment(bank, 1000.0) == 512


@pytest.fixture
def bank_factory():
    """Identically-seeded banks over the same model, one per call."""
    model = random_icm(20, 40, rng=7)

    def build(**kwargs):
        kwargs.setdefault(
            "settings", ChainSettings(burn_in=50, thinning=4)
        )
        kwargs.setdefault("rng", 11)
        kwargs.setdefault("initial_samples", 256)
        kwargs.setdefault("max_samples", 8192)
        return SampleBank(model, **kwargs)

    return build


class TestOnRealBanks:
    def test_default_policy_matches_historical_loop_bitforbit(
        self, bank_factory
    ):
        """Acceptance: with the policy left at its default, ensure_ess
        consumes exactly the RNG stream of the historical geometric
        loop, so banked states are bit-for-bit identical."""
        target = 80.0
        managed = bank_factory()
        managed.ensure_ess(target)

        manual = bank_factory()
        manual.grow(manual.initial_samples)
        while (
            manual.ess() < target and manual.n_samples < manual.max_samples
        ):
            goal = int(manual.n_samples * manual.growth_factor)
            if manual.grow(max(goal - manual.n_samples, 1)) == 0:
                break

        assert managed.n_samples == manual.n_samples
        assert np.array_equal(managed.states, manual.states)
        assert managed.ess() == manual.ess()

    def test_adaptive_draws_fewer_samples_than_geometric(self, bank_factory):
        """Acceptance: near convergence the adaptive policy extrapolates
        a small top-up where geometric doubles -- strictly fewer samples
        drawn, target still met."""
        geometric = bank_factory()
        adaptive = bank_factory(growth_policy=AdaptiveEssGrowthPolicy())

        # Prime both identically, then ask for slightly more ESS than
        # the primed bank already has.
        geometric.grow(256)
        adaptive.grow(256)
        assert np.array_equal(geometric.states, adaptive.states)
        target = geometric.ess() + 2.0

        achieved_geometric = geometric.ensure_ess(target)
        achieved_adaptive = adaptive.ensure_ess(target)

        assert achieved_geometric >= target
        assert achieved_adaptive >= target
        assert adaptive.n_samples < geometric.n_samples

    def test_per_call_policy_overrides_bank_default(self, bank_factory):
        bank = bank_factory()
        bank.grow(256)
        target = bank.ess() + 2.0
        bank.ensure_ess(target, policy=AdaptiveEssGrowthPolicy())
        assert bank.ess() >= target
        assert bank.n_samples < 512  # the geometric default would double

    def test_futile_bank_stops_short_of_target(self, bank_factory):
        """An absurd rate floor stops growth after the first round even
        though the target is unmet."""
        bank = bank_factory(
            growth_policy=AdaptiveEssGrowthPolicy(min_ess_per_second=1e12)
        )
        achieved = bank.ensure_ess(1e6)
        assert bank.n_samples == 256  # initial fill only
        assert achieved < 1e6

    def test_growth_history_records_every_round(self, bank_factory):
        bank = bank_factory()
        bank.ensure_ess(40.0)
        history = bank.growth_history()
        assert history  # at least the initial fill
        assert history[0].n_new == 256
        assert [growth.n_samples for growth in history] == sorted(
            growth.n_samples for growth in history
        )
        assert all(growth.seconds >= 0.0 for growth in history)
        assert bank.snapshot()["growths"] == len(history)
