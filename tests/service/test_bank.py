"""SampleBank: growth, continuation, ESS targeting, reachability rows."""

import numpy as np
import pytest

from repro.core.conditions import FlowConditionSet
from repro.graph.csr import reachable_csr
from repro.graph.generators import random_beta_icm, random_icm
from repro.mcmc.chain import ChainSettings
from repro.service.bank import SampleBank


@pytest.fixture(scope="module")
def model():
    return random_icm(25, 80, rng=3, probability_range=(0.1, 0.9))


@pytest.fixture
def settings():
    return ChainSettings(burn_in=20, thinning=1)


class TestGrowth:
    def test_grow_accumulates(self, model, settings):
        bank = SampleBank(model, settings=settings, rng=0)
        assert bank.n_samples == 0
        bank.grow(10)
        assert bank.n_samples == 10
        bank.grow(7)
        assert bank.n_samples == 17
        assert bank.states.shape == (17, model.n_edges)

    def test_growth_is_continuation(self, model, settings):
        # growing in two steps yields exactly the same states as one step
        split = SampleBank(model, settings=settings, rng=0)
        split.grow(8)
        split.grow(8)
        whole = SampleBank(model, settings=settings, rng=0)
        whole.grow(16)
        np.testing.assert_array_equal(split.states, whole.states)

    def test_append_only_row_order(self, model, settings):
        bank = SampleBank(model, settings=settings, rng=0)
        bank.grow(8)
        before = bank.states.copy()
        bank.grow(8)
        np.testing.assert_array_equal(bank.states[:8], before)

    def test_max_samples_cap(self, model, settings):
        bank = SampleBank(
            model, settings=settings, rng=0, initial_samples=4, max_samples=12
        )
        assert bank.grow(20) == 12
        assert bank.grow(5) == 0
        assert bank.n_samples == 12
        with pytest.raises(ValueError, match="cap"):
            bank.ensure_samples(50)

    def test_ensure_samples_idempotent(self, model, settings):
        bank = SampleBank(model, settings=settings, rng=0)
        bank.ensure_samples(10)
        states = bank.states
        bank.ensure_samples(10)
        assert bank.states is states

    def test_multi_chain_splits_work(self, model, settings):
        bank = SampleBank(model, settings=settings, rng=0, n_chains=3)
        bank.grow(10)
        assert bank.n_samples == 10
        assert 0.0 < bank.acceptance_rate <= 1.0

    def test_thread_executor_matches_serial(self, model, settings):
        serial = SampleBank(
            model, settings=settings, rng=0, n_chains=3, executor="serial"
        )
        threaded = SampleBank(
            model, settings=settings, rng=0, n_chains=3, executor="thread"
        )
        serial.grow(12)
        threaded.grow(12)
        np.testing.assert_array_equal(serial.states, threaded.states)
        assert serial.ess() == threaded.ess()

    def test_validation(self, model):
        with pytest.raises(ValueError, match="n_chains"):
            SampleBank(model, n_chains=0)
        with pytest.raises(ValueError, match="executor"):
            SampleBank(model, executor="process")
        with pytest.raises(ValueError, match="growth_factor"):
            SampleBank(model, growth_factor=1.0)
        with pytest.raises(ValueError, match="max_samples"):
            SampleBank(model, initial_samples=64, max_samples=32)


class TestEssTargeting:
    def test_ensure_ess_grows_until_met(self, model, settings):
        bank = SampleBank(
            model, settings=settings, rng=0, initial_samples=16, max_samples=4096
        )
        achieved = bank.ensure_ess(40.0)
        assert achieved == bank.ess()
        assert achieved >= 40.0 or bank.n_samples == 4096

    def test_ess_sums_over_chains(self, model, settings):
        bank = SampleBank(model, settings=settings, rng=0, n_chains=4)
        bank.grow(40)
        assert 1.0 <= bank.ess() <= 40.0

    def test_rejects_non_positive_target(self, model):
        bank = SampleBank(model, rng=0)
        with pytest.raises(ValueError, match="target_ess"):
            bank.ensure_ess(0.0)


class TestReachRows:
    def test_rows_match_reference_kernel(self, model, settings):
        bank = SampleBank(model, settings=settings, rng=0)
        bank.grow(12)
        csr = model.graph.csr()
        rows = bank.reach_rows(5)
        assert rows.shape == (12, model.n_nodes)
        for index in range(12):
            expected = reachable_csr(csr, (5,), bank.states[index])
            np.testing.assert_array_equal(rows[index], expected)

    def test_rows_extend_after_growth(self, model, settings):
        bank = SampleBank(model, settings=settings, rng=0)
        bank.grow(6)
        first = bank.reach_rows(2).copy()
        bank.grow(6)
        extended = bank.reach_rows(2)
        assert extended.shape[0] == 12
        np.testing.assert_array_equal(extended[:6], first)

    def test_many_sources_match_single_source(self, model, settings):
        bank = SampleBank(model, settings=settings, rng=0)
        bank.grow(10)
        batch = bank.reach_rows_many([1, 4, 9])
        single = SampleBank(model, settings=settings, rng=0)
        single.grow(10)
        for position in (1, 4, 9):
            np.testing.assert_array_equal(
                batch[position], single.reach_rows(position)
            )

    def test_indicator_column(self, model, settings):
        bank = SampleBank(model, settings=settings, rng=0)
        bank.grow(10)
        np.testing.assert_array_equal(
            bank.indicator(3, 8), bank.reach_rows(3)[:, 8]
        )

    def test_edge_indicator(self, model, settings):
        bank = SampleBank(model, settings=settings, rng=0)
        bank.grow(10)
        np.testing.assert_array_equal(
            bank.edge_indicator([0, 2]),
            bank.states[:, 0] & bank.states[:, 2],
        )
        assert bank.edge_indicator([]).all()


class TestConditions:
    def test_banked_samples_satisfy_conditions(self, model, settings):
        nodes = model.graph.nodes()
        conditions = FlowConditionSet.from_tuples([(nodes[0], nodes[5], True)])
        bank = SampleBank(model, conditions=conditions, settings=settings, rng=0)
        bank.grow(15)
        position = model.graph.node_position
        indicator = bank.indicator(position(nodes[0]), position(nodes[5]))
        assert indicator.all()

    def test_beta_model_collapses(self, settings):
        beta = random_beta_icm(15, 40, rng=1)
        bank = SampleBank(beta, settings=settings, rng=0)
        bank.grow(5)
        np.testing.assert_allclose(
            bank.model.edge_probabilities,
            beta.expected_icm().edge_probabilities,
        )
