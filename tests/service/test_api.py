"""FlowQueryService: caching, invalidation, and estimator agreement."""

import numpy as np
import pytest

from repro.errors import ServiceError
from repro.graph.generators import random_beta_icm, random_icm
from repro.mcmc.chain import ChainSettings
from repro.mcmc.flow_estimator import estimate_flow_probability
from repro.service.api import FlowQueryService
from repro.service.queries import FlowQuery


@pytest.fixture(scope="module")
def model():
    return random_icm(25, 80, rng=3, probability_range=(0.1, 0.9))


@pytest.fixture
def service(model):
    service = FlowQueryService(
        settings=ChainSettings(burn_in=20, thinning=1), rng=0
    )
    service.register("m", model)
    return service


class TestCaching:
    def test_second_lookup_hits(self, model, service):
        nodes = model.graph.nodes()
        query = FlowQuery.marginal(nodes[0], nodes[5])
        first = service.query("m", query, n_samples=64)
        second = service.query("m", query, n_samples=64)
        assert not first.cached
        assert second.cached
        assert second.value == first.value

    def test_precision_is_part_of_the_key(self, model, service):
        nodes = model.graph.nodes()
        query = FlowQuery.marginal(nodes[0], nodes[5])
        service.query("m", query, n_samples=64)
        other = service.query("m", query, n_samples=128)
        assert not other.cached
        assert other.n_samples == 128

    def test_batch_mixes_hits_and_misses(self, model, service):
        nodes = model.graph.nodes()
        known = FlowQuery.marginal(nodes[0], nodes[5])
        fresh = FlowQuery.marginal(nodes[1], nodes[6])
        service.query("m", known, n_samples=64)
        results = service.query_batch("m", [known, fresh], n_samples=64)
        assert results[0].cached and not results[1].cached

    def test_explicit_invalidate(self, model, service):
        nodes = model.graph.nodes()
        query = FlowQuery.marginal(nodes[0], nodes[5])
        service.query("m", query, n_samples=64)
        assert service.invalidate("m") == 1
        assert not service.query("m", query, n_samples=64).cached


class TestInvalidation:
    def test_in_place_mutation_misses_cache(self):
        model = random_beta_icm(20, 60, rng=1)
        service = FlowQueryService(
            settings=ChainSettings(burn_in=20, thinning=1), rng=0
        )
        original = service.register("m", model)
        nodes = model.graph.nodes()
        query = FlowQuery.marginal(nodes[0], nodes[5])
        service.query("m", query, n_samples=64)
        assert service.query("m", query, n_samples=64).cached
        model._alphas[0] += 3.0  # mutate the registered model's edge parameter
        after = service.query("m", query, n_samples=64)
        assert not after.cached
        assert service.registry.stored_fingerprint("m") != original

    def test_reregistration_misses_cache(self, model):
        service = FlowQueryService(
            settings=ChainSettings(burn_in=20, thinning=1), rng=0
        )
        service.register("m", model)
        nodes = model.graph.nodes()
        query = FlowQuery.marginal(nodes[0], nodes[5])
        service.query("m", query, n_samples=64)
        probabilities = model.edge_probabilities.copy()
        probabilities[:] = np.clip(probabilities + 0.05, 0.0, 1.0)
        service.register("m", model.with_probabilities(probabilities))
        assert not service.query("m", query, n_samples=64).cached

    def test_unregister_then_query_raises(self, model, service):
        service.unregister("m")
        with pytest.raises(ServiceError, match="no model registered"):
            service.query("m", FlowQuery.marginal("a", "b"))


class TestAgreement:
    def test_marginals_match_direct_estimator_within_error(self, model):
        """Service answers agree with per-query chains within sampling error."""
        service = FlowQueryService(
            settings=ChainSettings(burn_in=50, thinning=2), rng=0
        )
        service.register("m", model)
        nodes = model.graph.nodes()
        pairs = [(nodes[0], nodes[8]), (nodes[1], nodes[9]), (nodes[2], nodes[7])]
        results = service.query_batch(
            "m",
            [FlowQuery.marginal(source, sink) for source, sink in pairs],
            n_samples=1500,
        )
        for (source, sink), result in zip(pairs, results):
            direct = estimate_flow_probability(
                model,
                source,
                sink,
                n_samples=1500,
                settings=ChainSettings(burn_in=50, thinning=2),
                rng=123,
            )
            # generous combined tolerance: both are MCMC estimates
            tolerance = 4.0 * (result.std_error + direct.std_error) + 0.02
            assert result.value == pytest.approx(direct.probability, abs=tolerance)

    def test_impact_matches_direct_distribution_shape(self, model):
        from repro.mcmc.flow_estimator import estimate_impact_distribution

        service = FlowQueryService(
            settings=ChainSettings(burn_in=50, thinning=2), rng=0
        )
        service.register("m", model)
        source = model.graph.nodes()[2]
        result = service.query("m", FlowQuery.impact(source), n_samples=1000)
        direct = estimate_impact_distribution(
            model,
            source,
            n_samples=1000,
            settings=ChainSettings(burn_in=50, thinning=2),
            rng=123,
        )
        assert sum(result.value.values()) == pytest.approx(1.0)
        service_mean = sum(k * v for k, v in result.value.items())
        direct_mean = sum(k * v for k, v in direct.items())
        assert service_mean == pytest.approx(direct_mean, abs=2.5)


class TestEvaluationBridge:
    def test_compare_impact_via_service(self, model, service):
        from repro.evaluation import compare_impact_via_service

        source = model.graph.nodes()[2]
        comparison = compare_impact_via_service(
            service, "m", source, [0, 1, 1, 2, 5], n_samples=256
        )
        assert sum(comparison.predicted) == pytest.approx(1.0)
        assert sum(comparison.actual) == pytest.approx(1.0)
