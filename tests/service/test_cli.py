"""The repro-experiments ``query`` subcommand."""

import json

import pytest

from repro.experiments.cli import _main
from repro.graph.generators import random_icm
from repro.io import save_icm
from repro.service.cli import run_query


@pytest.fixture
def model_path(tmp_path):
    model = random_icm(20, 60, rng=0)
    path = tmp_path / "model.json"
    save_icm(model, path)
    edge = next(model.graph.iter_edges())
    return str(path), model, edge


class TestRunQuery:
    def test_inline_queries(self, model_path, capsys):
        path, model, edge = model_path
        code = run_query(
            [
                "--model",
                path,
                "--query",
                json.dumps({"kind": "marginal", "source": edge.src, "sink": edge.dst}),
                "--n-samples",
                "64",
                "--seed",
                "0",
            ]
        )
        assert code == 0
        output = json.loads(capsys.readouterr().out)
        (result,) = output["results"]
        assert 0.0 <= result["value"] <= 1.0
        assert result["n_samples"] == 64

    def test_queries_file(self, model_path, tmp_path, capsys):
        path, model, edge = model_path
        batch = tmp_path / "batch.json"
        batch.write_text(
            json.dumps(
                [
                    {"kind": "marginal", "source": edge.src, "sink": edge.dst},
                    {"kind": "impact", "source": edge.src},
                ]
            )
        )
        code = run_query(
            ["--model", path, "--queries", str(batch), "--n-samples", "64"]
        )
        assert code == 0
        output = json.loads(capsys.readouterr().out)
        assert len(output["results"]) == 2

    def test_dispatched_from_experiments_cli(self, model_path, capsys):
        path, model, edge = model_path
        code = _main(
            [
                "query",
                "--model",
                path,
                "--query",
                json.dumps({"kind": "impact", "source": edge.src}),
                "--n-samples",
                "32",
            ]
        )
        assert code == 0
        assert "results" in json.loads(capsys.readouterr().out)

    def test_no_queries_is_an_error(self, model_path, capsys):
        path, _, _ = model_path
        assert run_query(["--model", path]) == 1
        assert "no queries" in capsys.readouterr().err

    def test_missing_model_file_is_an_error(self, tmp_path, capsys):
        assert (
            run_query(
                [
                    "--model",
                    str(tmp_path / "absent.json"),
                    "--query",
                    '{"kind": "impact", "source": "a"}',
                ]
            )
            == 1
        )
        assert "error:" in capsys.readouterr().err


class TestMetricsOutFlag:
    def test_query_writes_metrics_jsonl(self, model_path, tmp_path, capsys):
        from repro.obs.analyze import load_metrics
        from repro.obs.metrics import disable_metrics

        path, model, edge = model_path
        metrics_path = tmp_path / "metrics.jsonl"
        try:
            code = run_query(
                [
                    "--model", path,
                    "--query",
                    json.dumps(
                        {"kind": "marginal", "source": edge.src, "sink": edge.dst}
                    ),
                    "--n-samples", "64",
                    "--metrics-out", str(metrics_path),
                ]
            )
        finally:
            disable_metrics()
        assert code == 0
        families = load_metrics(str(metrics_path))
        names = {family["name"] for family in families}
        assert "repro_service_batches_total" in names
        assert "repro_bank_samples" in names

    def test_query_adaptive_growth_flag(self, model_path, capsys):
        path, model, edge = model_path
        code = run_query(
            [
                "--model", path,
                "--query",
                json.dumps(
                    {"kind": "marginal", "source": edge.src, "sink": edge.dst}
                ),
                "--target-ess", "30",
                "--adaptive-growth",
                "--min-ess-per-sec", "0.0",
            ]
        )
        assert code == 0
        (result,) = json.loads(capsys.readouterr().out)["results"]
        assert result["ess"] >= 30.0

    def test_min_ess_per_sec_requires_adaptive(self, model_path, capsys):
        path, model, edge = model_path
        with pytest.raises(SystemExit):
            run_query(
                [
                    "--model", path,
                    "--query", "{}",
                    "--min-ess-per-sec", "5.0",
                ]
            )

    def test_experiments_metrics_out(self, tmp_path, capsys):
        from repro.obs.analyze import load_metrics
        from repro.obs.metrics import disable_metrics
        from repro.obs.tracing import disable_tracing

        trace_path = tmp_path / "trace.jsonl"
        metrics_path = tmp_path / "metrics.jsonl"
        try:
            code = _main(
                [
                    "fig1",
                    "--scale", "quick",
                    "--trace-out", str(trace_path),
                    "--metrics-out", str(metrics_path),
                ]
            )
        finally:
            disable_metrics()
            disable_tracing()
        assert code == 0
        out = capsys.readouterr().out
        assert "wrote" in out and "metric families" in out
        assert metrics_path.exists()
        load_metrics(str(metrics_path))  # parses as metrics JSONL
        from repro.obs.analyze import load_spans

        spans = load_spans(str(trace_path))
        assert any(span["name"] == "experiment:fig1" for span in spans)
