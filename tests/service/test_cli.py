"""The repro-experiments ``query`` subcommand."""

import json

import pytest

from repro.experiments.cli import _main
from repro.graph.generators import random_icm
from repro.io import save_icm
from repro.service.cli import run_query


@pytest.fixture
def model_path(tmp_path):
    model = random_icm(20, 60, rng=0)
    path = tmp_path / "model.json"
    save_icm(model, path)
    edge = next(model.graph.iter_edges())
    return str(path), model, edge


class TestRunQuery:
    def test_inline_queries(self, model_path, capsys):
        path, model, edge = model_path
        code = run_query(
            [
                "--model",
                path,
                "--query",
                json.dumps({"kind": "marginal", "source": edge.src, "sink": edge.dst}),
                "--n-samples",
                "64",
                "--seed",
                "0",
            ]
        )
        assert code == 0
        output = json.loads(capsys.readouterr().out)
        (result,) = output["results"]
        assert 0.0 <= result["value"] <= 1.0
        assert result["n_samples"] == 64

    def test_queries_file(self, model_path, tmp_path, capsys):
        path, model, edge = model_path
        batch = tmp_path / "batch.json"
        batch.write_text(
            json.dumps(
                [
                    {"kind": "marginal", "source": edge.src, "sink": edge.dst},
                    {"kind": "impact", "source": edge.src},
                ]
            )
        )
        code = run_query(
            ["--model", path, "--queries", str(batch), "--n-samples", "64"]
        )
        assert code == 0
        output = json.loads(capsys.readouterr().out)
        assert len(output["results"]) == 2

    def test_dispatched_from_experiments_cli(self, model_path, capsys):
        path, model, edge = model_path
        code = _main(
            [
                "query",
                "--model",
                path,
                "--query",
                json.dumps({"kind": "impact", "source": edge.src}),
                "--n-samples",
                "32",
            ]
        )
        assert code == 0
        assert "results" in json.loads(capsys.readouterr().out)

    def test_no_queries_is_an_error(self, model_path, capsys):
        path, _, _ = model_path
        assert run_query(["--model", path]) == 1
        assert "no queries" in capsys.readouterr().err

    def test_missing_model_file_is_an_error(self, tmp_path, capsys):
        assert (
            run_query(
                [
                    "--model",
                    str(tmp_path / "absent.json"),
                    "--query",
                    '{"kind": "impact", "source": "a"}',
                ]
            )
            == 1
        )
        assert "error:" in capsys.readouterr().err


class TestMetricsOutFlag:
    def test_query_writes_metrics_jsonl(self, model_path, tmp_path, capsys):
        from repro.obs.analyze import load_metrics
        from repro.obs.metrics import disable_metrics

        path, model, edge = model_path
        metrics_path = tmp_path / "metrics.jsonl"
        try:
            code = run_query(
                [
                    "--model", path,
                    "--query",
                    json.dumps(
                        {"kind": "marginal", "source": edge.src, "sink": edge.dst}
                    ),
                    "--n-samples", "64",
                    "--metrics-out", str(metrics_path),
                ]
            )
        finally:
            disable_metrics()
        assert code == 0
        families = load_metrics(str(metrics_path))
        names = {family["name"] for family in families}
        assert "repro_service_batches_total" in names
        assert "repro_bank_samples" in names

    def test_query_adaptive_growth_flag(self, model_path, capsys):
        path, model, edge = model_path
        code = run_query(
            [
                "--model", path,
                "--query",
                json.dumps(
                    {"kind": "marginal", "source": edge.src, "sink": edge.dst}
                ),
                "--target-ess", "30",
                "--adaptive-growth",
                "--min-ess-per-sec", "0.0",
            ]
        )
        assert code == 0
        (result,) = json.loads(capsys.readouterr().out)["results"]
        assert result["ess"] >= 30.0

    def test_min_ess_per_sec_requires_adaptive(self, model_path, capsys):
        path, model, edge = model_path
        with pytest.raises(SystemExit):
            run_query(
                [
                    "--model", path,
                    "--query", "{}",
                    "--min-ess-per-sec", "5.0",
                ]
            )

    def test_experiments_metrics_out(self, tmp_path, capsys):
        from repro.obs.analyze import load_metrics
        from repro.obs.metrics import disable_metrics
        from repro.obs.tracing import disable_tracing

        trace_path = tmp_path / "trace.jsonl"
        metrics_path = tmp_path / "metrics.jsonl"
        try:
            code = _main(
                [
                    "fig1",
                    "--scale", "quick",
                    "--trace-out", str(trace_path),
                    "--metrics-out", str(metrics_path),
                ]
            )
        finally:
            disable_metrics()
            disable_tracing()
        assert code == 0
        out = capsys.readouterr().out
        assert "wrote" in out and "metric families" in out
        assert metrics_path.exists()
        load_metrics(str(metrics_path))  # parses as metrics JSONL
        from repro.obs.analyze import load_spans

        spans = load_spans(str(trace_path))
        assert any(span["name"] == "experiment:fig1" for span in spans)


class TestRunIngest:
    @pytest.fixture
    def replay_setup(self, tmp_path):
        """A saved uniform prior plus a simulated event log to replay."""
        import numpy as np

        from repro.core.beta_icm import BetaICM
        from repro.core.cascade import simulate_cascade
        from repro.io import save_beta_icm
        from repro.learning.evidence import attributed_from_cascade
        from repro.service.ingest import AdoptionEvent, events_to_jsonl

        truth = random_icm(15, 45, rng=2)
        prior_path = tmp_path / "prior.json"
        save_beta_icm(BetaICM.uniform_prior(truth.graph), prior_path)
        rng = np.random.default_rng(6)
        nodes = truth.graph.nodes()
        events = []
        for index in range(12):
            cascade = simulate_cascade(
                truth,
                [nodes[int(rng.integers(len(nodes)))]],
                rng=int(rng.integers(2**31)),
            )
            observation = attributed_from_cascade(truth, cascade)
            events.append(
                AdoptionEvent(
                    model="m",
                    sources=tuple(observation.sources),
                    active_nodes=tuple(observation.active_nodes),
                    active_edges=tuple(observation.active_edges),
                    event_id=index,
                )
            )
        log_path = tmp_path / "stream.jsonl"
        events_to_jsonl(events, str(log_path))
        return truth, events, str(prior_path), str(log_path)

    def test_replay_saves_batch_equivalent_posterior(
        self, replay_setup, tmp_path, capsys
    ):
        import numpy as np

        from repro.io import load_beta_icm
        from repro.learning.attributed import train_beta_icm
        from repro.learning.evidence import AttributedEvidence
        from repro.service.cli import run_ingest

        truth, events, prior_path, log_path = replay_setup
        out_path = tmp_path / "posterior.json"
        code = run_ingest(
            [
                "--model", f"m={prior_path}",
                "--events", log_path,
                "--batch-size", "5",
                "--out", f"m={out_path}",
            ]
        )
        assert code == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["n_events"] == 12
        assert summary["n_batches"] == 3
        assert summary["ingest"]["events_absorbed"] == 12
        assert summary["ingest"]["tracked_models"] == ["m"]

        replayed = load_beta_icm(out_path)
        batch = train_beta_icm(
            truth.graph.copy(),
            AttributedEvidence(
                [event.to_observation() for event in events]
            ),
        )
        assert np.array_equal(replayed.alphas, batch.alphas)
        assert np.array_equal(replayed.betas, batch.betas)

    def test_dispatched_from_experiments_cli(self, replay_setup, capsys):
        _, events, prior_path, log_path = replay_setup
        code = _main(
            ["ingest", "--model", f"m={prior_path}", "--events", log_path]
        )
        assert code == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["n_events"] == 12

    def test_missing_event_log_is_an_error(self, replay_setup, capsys):
        from repro.service.cli import run_ingest

        _, _, prior_path, _ = replay_setup
        code = run_ingest(
            ["--model", f"m={prior_path}", "--events", "absent.jsonl"]
        )
        assert code == 1
        assert "error" in capsys.readouterr().err

    def test_out_must_name_registered_model(self, replay_setup, tmp_path):
        from repro.service.cli import run_ingest

        _, _, prior_path, log_path = replay_setup
        with pytest.raises(SystemExit):
            run_ingest(
                [
                    "--model", f"m={prior_path}",
                    "--events", log_path,
                    "--out", f"other={tmp_path / 'x.json'}",
                ]
            )
