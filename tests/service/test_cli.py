"""The repro-experiments ``query`` subcommand."""

import json

import pytest

from repro.experiments.cli import _main
from repro.graph.generators import random_icm
from repro.io import save_icm
from repro.service.cli import run_query


@pytest.fixture
def model_path(tmp_path):
    model = random_icm(20, 60, rng=0)
    path = tmp_path / "model.json"
    save_icm(model, path)
    edge = next(model.graph.iter_edges())
    return str(path), model, edge


class TestRunQuery:
    def test_inline_queries(self, model_path, capsys):
        path, model, edge = model_path
        code = run_query(
            [
                "--model",
                path,
                "--query",
                json.dumps({"kind": "marginal", "source": edge.src, "sink": edge.dst}),
                "--n-samples",
                "64",
                "--seed",
                "0",
            ]
        )
        assert code == 0
        output = json.loads(capsys.readouterr().out)
        (result,) = output["results"]
        assert 0.0 <= result["value"] <= 1.0
        assert result["n_samples"] == 64

    def test_queries_file(self, model_path, tmp_path, capsys):
        path, model, edge = model_path
        batch = tmp_path / "batch.json"
        batch.write_text(
            json.dumps(
                [
                    {"kind": "marginal", "source": edge.src, "sink": edge.dst},
                    {"kind": "impact", "source": edge.src},
                ]
            )
        )
        code = run_query(
            ["--model", path, "--queries", str(batch), "--n-samples", "64"]
        )
        assert code == 0
        output = json.loads(capsys.readouterr().out)
        assert len(output["results"]) == 2

    def test_dispatched_from_experiments_cli(self, model_path, capsys):
        path, model, edge = model_path
        code = _main(
            [
                "query",
                "--model",
                path,
                "--query",
                json.dumps({"kind": "impact", "source": edge.src}),
                "--n-samples",
                "32",
            ]
        )
        assert code == 0
        assert "results" in json.loads(capsys.readouterr().out)

    def test_no_queries_is_an_error(self, model_path, capsys):
        path, _, _ = model_path
        assert run_query(["--model", path]) == 1
        assert "no queries" in capsys.readouterr().err

    def test_missing_model_file_is_an_error(self, tmp_path, capsys):
        assert (
            run_query(
                [
                    "--model",
                    str(tmp_path / "absent.json"),
                    "--query",
                    '{"kind": "impact", "source": "a"}',
                ]
            )
            == 1
        )
        assert "error:" in capsys.readouterr().err
