"""HTTP integration: repro-serve answers JSON flow queries end to end."""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.graph.generators import random_icm
from repro.io import model_to_payload
from repro.mcmc.chain import ChainSettings
from repro.service.api import FlowQueryService
from repro.service.server import make_server


@pytest.fixture(scope="module")
def server_url():
    service = FlowQueryService(
        settings=ChainSettings(burn_in=20, thinning=1), rng=0
    )
    server = make_server(service, port=0, quiet=True)
    host, port = server.server_address[:2]
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield f"http://{host}:{port}"
    server.shutdown()
    server.server_close()


def _post(url, payload):
    request = urllib.request.Request(
        url,
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=30) as response:
        return json.loads(response.read())


def _get(url):
    with urllib.request.urlopen(url, timeout=30) as response:
        return json.loads(response.read())


class TestHttpEndpoint:
    def test_register_then_query_round_trip(self, server_url):
        model = random_icm(20, 60, rng=0)
        registered = _post(f"{server_url}/models/demo", model_to_payload(model))
        assert registered["name"] == "demo"
        assert len(registered["fingerprint"]) == 64

        nodes = model.graph.nodes()
        answer = _post(
            f"{server_url}/query",
            {
                "model": "demo",
                "queries": [
                    {"kind": "marginal", "source": nodes[0], "sink": nodes[5]},
                    {"kind": "impact", "source": nodes[0]},
                ],
                "n_samples": 64,
            },
        )
        assert answer["model"] == "demo"
        marginal, impact = answer["results"]
        assert 0.0 <= marginal["value"] <= 1.0
        assert marginal["n_samples"] == 64
        assert not marginal["cached"]
        assert sum(impact["value"].values()) == pytest.approx(1.0)

        # a repeated request is served from the cache
        again = _post(
            f"{server_url}/query",
            {
                "model": "demo",
                "query": {"kind": "marginal", "source": nodes[0], "sink": nodes[5]},
                "n_samples": 64,
            },
        )
        assert again["results"][0]["cached"]
        assert again["results"][0]["value"] == marginal["value"]

    def test_health_and_models_listing(self, server_url):
        health = _get(f"{server_url}/health")
        assert health["status"] == "ok"
        models = _get(f"{server_url}/models")["models"]
        for fingerprint in models.values():
            assert len(fingerprint) == 64

    def test_bad_query_kind_is_400(self, server_url):
        model = random_icm(10, 20, rng=0)
        _post(f"{server_url}/models/tiny", model_to_payload(model))
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _post(
                f"{server_url}/query",
                {"model": "tiny", "query": {"kind": "mystery"}},
            )
        assert excinfo.value.code == 400
        assert "unknown query kind" in json.loads(excinfo.value.read())["error"]

    def test_unknown_model_is_400(self, server_url):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _post(
                f"{server_url}/query",
                {
                    "model": "ghost",
                    "query": {"kind": "marginal", "source": "a", "sink": "b"},
                },
            )
        assert excinfo.value.code == 400

    def test_unknown_path_is_404(self, server_url):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(f"{server_url}/nope")
        assert excinfo.value.code == 404

    def test_malformed_body_is_400(self, server_url):
        request = urllib.request.Request(
            f"{server_url}/query",
            data=b"not json",
            headers={"Content-Type": "application/json"},
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=30)
        assert excinfo.value.code == 400
