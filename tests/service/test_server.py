"""HTTP integration: repro-serve answers JSON flow queries end to end."""

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.graph.generators import random_icm
from repro.io import model_to_payload
from repro.mcmc.chain import ChainSettings
from repro.service.api import FlowQueryService
from repro.service.server import make_server


@pytest.fixture(scope="module")
def server_url():
    service = FlowQueryService(
        settings=ChainSettings(burn_in=20, thinning=1), rng=0
    )
    server = make_server(service, port=0, quiet=True)
    host, port = server.server_address[:2]
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield f"http://{host}:{port}"
    server.shutdown()
    server.server_close()


def _post(url, payload):
    request = urllib.request.Request(
        url,
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=30) as response:
        return json.loads(response.read())


def _get(url):
    with urllib.request.urlopen(url, timeout=30) as response:
        return json.loads(response.read())


class TestHttpEndpoint:
    def test_register_then_query_round_trip(self, server_url):
        model = random_icm(20, 60, rng=0)
        registered = _post(f"{server_url}/models/demo", model_to_payload(model))
        assert registered["name"] == "demo"
        assert len(registered["fingerprint"]) == 64

        nodes = model.graph.nodes()
        answer = _post(
            f"{server_url}/query",
            {
                "model": "demo",
                "queries": [
                    {"kind": "marginal", "source": nodes[0], "sink": nodes[5]},
                    {"kind": "impact", "source": nodes[0]},
                ],
                "n_samples": 64,
            },
        )
        assert answer["model"] == "demo"
        marginal, impact = answer["results"]
        assert 0.0 <= marginal["value"] <= 1.0
        assert marginal["n_samples"] == 64
        assert not marginal["cached"]
        assert sum(impact["value"].values()) == pytest.approx(1.0)

        # a repeated request is served from the cache
        again = _post(
            f"{server_url}/query",
            {
                "model": "demo",
                "query": {"kind": "marginal", "source": nodes[0], "sink": nodes[5]},
                "n_samples": 64,
            },
        )
        assert again["results"][0]["cached"]
        assert again["results"][0]["value"] == marginal["value"]

    def test_health_and_models_listing(self, server_url):
        health = _get(f"{server_url}/health")
        assert health["status"] == "ok"
        models = _get(f"{server_url}/models")["models"]
        for fingerprint in models.values():
            assert len(fingerprint) == 64

    def test_bad_query_kind_is_400(self, server_url):
        model = random_icm(10, 20, rng=0)
        _post(f"{server_url}/models/tiny", model_to_payload(model))
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _post(
                f"{server_url}/query",
                {"model": "tiny", "query": {"kind": "mystery"}},
            )
        assert excinfo.value.code == 400
        assert "unknown query kind" in json.loads(excinfo.value.read())["error"]

    def test_unknown_model_is_400(self, server_url):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _post(
                f"{server_url}/query",
                {
                    "model": "ghost",
                    "query": {"kind": "marginal", "source": "a", "sink": "b"},
                },
            )
        assert excinfo.value.code == 400

    def test_unknown_path_is_404(self, server_url):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(f"{server_url}/nope")
        assert excinfo.value.code == 404

    def test_malformed_body_is_400(self, server_url):
        request = urllib.request.Request(
            f"{server_url}/query",
            data=b"not json",
            headers={"Content-Type": "application/json"},
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=30)
        assert excinfo.value.code == 400


def _post_raw(url, payload, headers=None):
    """POST returning (response headers, parsed JSON body)."""
    all_headers = {"Content-Type": "application/json"}
    if headers:
        all_headers.update(headers)
    request = urllib.request.Request(
        url, data=json.dumps(payload).encode("utf-8"), headers=all_headers
    )
    with urllib.request.urlopen(request, timeout=30) as response:
        return response.headers, json.loads(response.read())


class TestRequestIds:
    def test_success_carries_request_id_in_header_and_body(self, server_url):
        headers, body = _post_raw(
            f"{server_url}/models/rid-demo",
            model_to_payload(random_icm(10, 20, rng=0)),
        )
        request_id = headers["X-Repro-Request-Id"]
        assert request_id
        assert body["request_id"] == request_id
        assert int(headers["X-Repro-Server-Ns"]) > 0

    def test_error_responses_carry_request_id_too(self, server_url):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _post(f"{server_url}/query", {"model": "ghost", "query": {}})
        error = excinfo.value
        request_id = error.headers["X-Repro-Request-Id"]
        assert request_id
        assert json.loads(error.read())["request_id"] == request_id

    def test_request_ids_are_distinct_per_request(self, server_url):
        first = _get(f"{server_url}/healthz")["request_id"]
        second = _get(f"{server_url}/healthz")["request_id"]
        assert first != second

    def test_404_carries_request_id(self, server_url):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(f"{server_url}/nope")
        assert excinfo.value.headers["X-Repro-Request-Id"]


class TestTracePropagation:
    def test_client_and_server_spans_share_one_trace_id(self, server_url):
        from repro.obs.context import (
            TRACE_HEADER,
            activate_trace_context,
            context_to_header,
            new_trace_context,
        )
        from repro.obs.tracing import get_tracer

        model = random_icm(10, 20, rng=0)
        _post(f"{server_url}/models/traced", model_to_payload(model))
        nodes = model.graph.nodes()

        tracer = get_tracer()
        tracer.enable()
        try:
            context = new_trace_context()
            with activate_trace_context(context):
                with tracer.span("client.request") as client_span:
                    _post_raw(
                        f"{server_url}/query",
                        {
                            "model": "traced",
                            "query": {
                                "kind": "marginal",
                                "source": nodes[0],
                                "sink": nodes[1],
                            },
                            "n_samples": 16,
                        },
                        headers={
                            TRACE_HEADER: context_to_header(
                                context.child(client_span.span_id)
                            )
                        },
                    )
            # The handler closes its http.request span *after* writing
            # the response the client just read -- wait for it to land
            # before disabling the tracer.
            deadline = time.perf_counter() + 5.0
            while time.perf_counter() < deadline:
                if any(
                    span.name == "http.request"
                    and span.trace_id == context.trace_id
                    for span in tracer.finished_spans()
                ):
                    break
                time.sleep(0.01)
        finally:
            tracer.disable()

        spans = tracer.finished_spans()
        same_trace = [
            span for span in spans if span.trace_id == context.trace_id
        ]
        names = {span.name for span in same_trace}
        # The server handler runs in this same test process (the test
        # server is in-process), so its spans land in the same tracer:
        # the client span and the server's spans share the trace id
        # across the HTTP hop.
        assert "client.request" in names
        assert "http.request" in names
        assert "service.query_batch" in names
        http_spans = [s for s in same_trace if s.name == "http.request"]
        assert http_spans[0].remote_parent_id == client_span.span_id

    def test_unsampled_header_suppresses_server_spans(self, server_url):
        from repro.obs.context import (
            TRACE_HEADER,
            context_to_header,
            new_trace_context,
        )
        from repro.obs.tracing import get_tracer

        tracer = get_tracer()
        tracer.enable()
        try:
            context = new_trace_context(sampled=False)
            _post_raw(
                f"{server_url}/models/quiet",
                model_to_payload(random_icm(5, 8, rng=1)),
                headers={TRACE_HEADER: context_to_header(context)},
            )
        finally:
            tracer.disable()
        spans = [
            span
            for span in tracer.finished_spans()
            if span.trace_id == context.trace_id
        ]
        assert spans == []

    def test_malformed_trace_header_does_not_fail_the_request(self, server_url):
        from repro.obs.context import TRACE_HEADER

        headers, body = _post_raw(
            f"{server_url}/models/robust",
            model_to_payload(random_icm(5, 8, rng=2)),
            headers={TRACE_HEADER: "garbage-header-value"},
        )
        assert body["name"] == "robust"


class TestProfilez:
    def test_404_when_no_profiler_running(self, server_url):
        from repro.obs.profiler import get_profiler

        assert get_profiler() is None
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(f"{server_url}/profilez")
        assert excinfo.value.code == 404
        assert "profiler" in json.loads(excinfo.value.read())["error"]

    def test_serves_live_folded_stacks(self, server_url):
        from repro.obs.profiler import parse_folded, start_profiler, stop_profiler

        start_profiler(hz=200.0)
        try:
            # Generate some server-side work to sample, then scrape.
            _post(
                f"{server_url}/models/profiled",
                model_to_payload(random_icm(10, 20, rng=0)),
            )
            deadline = time.perf_counter() + 5.0
            text = ""
            while time.perf_counter() < deadline:
                with urllib.request.urlopen(
                    f"{server_url}/profilez", timeout=30
                ) as response:
                    assert response.headers["Content-Type"].startswith(
                        "text/plain"
                    )
                    text = response.read().decode("utf-8")
                if text.strip():
                    break
                time.sleep(0.05)
        finally:
            stop_profiler()
        stacks = parse_folded(text)
        assert stacks, "profiler produced no stacks within the deadline"
