"""Multi-threaded hammer tests for the service's shared mutable state.

These are the runtime counterpart of the THR001 lint rule: the rule
proves every mutation sits under a lock, these tests drive the locked
paths from many threads at once and assert the invariants that racing
unguarded code would break -- LRU capacity bounds, hit/miss accounting,
append-only sample blocks, fingerprint consistency.

Races are probabilistic, so a green run here is evidence, not proof;
the deterministic guarantee is the lint rule.  Thread counts and
iteration counts are sized to finish in well under a second each.
"""

import threading
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.core.icm import ICM
from repro.errors import ServiceError
from repro.graph.digraph import DiGraph
from repro.mcmc.chain import ChainSettings
from repro.service.bank import SampleBank
from repro.service.cache import ResultCache
from repro.service.registry import ModelRegistry

N_THREADS = 8


def run_hammer(worker, n_threads=N_THREADS):
    """Run ``worker(thread_index)`` concurrently; re-raise any failure."""
    barrier = threading.Barrier(n_threads)

    def synchronised(index):
        barrier.wait()  # maximise overlap: all threads start together
        return worker(index)

    with ThreadPoolExecutor(max_workers=n_threads) as pool:
        futures = [pool.submit(synchronised, i) for i in range(n_threads)]
        return [future.result() for future in futures]


def small_model(seed=0, n_nodes=6, n_edges=10):
    rng = np.random.default_rng(seed)
    graph = DiGraph(nodes=[f"v{i}" for i in range(n_nodes)])
    pairs = set()
    while len(pairs) < n_edges:
        src, dst = rng.integers(0, n_nodes, size=2)
        if src != dst:
            pairs.add((int(src), int(dst)))
    for src, dst in sorted(pairs):
        graph.add_edge(f"v{src}", f"v{dst}")
    return ICM(graph, rng.uniform(0.1, 0.9, size=graph.n_edges))


class TestResultCacheHammer:
    def test_concurrent_put_get_respects_capacity(self):
        cache = ResultCache(max_entries=32)
        per_thread = 200

        def worker(index):
            for i in range(per_thread):
                cache.put(f"fp{index}", i, (index, i))
                cache.get(f"fp{index}", i)
                cache.get(f"fp{(index + 1) % N_THREADS}", i)

        run_hammer(worker)
        assert len(cache) <= cache.max_entries
        # Every operation was counted exactly once despite the contention.
        assert cache.hits + cache.misses == N_THREADS * per_thread * 2

    def test_concurrent_invalidation_never_corrupts(self):
        cache = ResultCache(max_entries=64)

        def worker(index):
            fingerprint = f"fp{index % 2}"
            for i in range(150):
                cache.put(fingerprint, (index, i), i)
                if i % 10 == 9:
                    cache.invalidate_fingerprint(fingerprint)
                cache.get(fingerprint, (index, i))

        run_hammer(worker)
        assert len(cache) <= cache.max_entries
        cache.clear()
        assert len(cache) == 0


class TestModelRegistryHammer:
    def test_concurrent_register_resolve_unregister(self):
        registry = ModelRegistry()
        models = [small_model(seed) for seed in range(N_THREADS)]

        def worker(index):
            name = f"model-{index % 4}"
            for i in range(50):
                fingerprint = registry.register(name, models[index])
                assert isinstance(fingerprint, str) and fingerprint
                try:
                    current, _previous = registry.fingerprint(name)
                    assert any(registry.get(name) is model for model in models)
                    assert isinstance(current, str)
                except ServiceError:
                    pass  # another thread unregistered the name: valid race
                if i % 25 == 24:
                    try:
                        registry.unregister(name)
                    except ServiceError:
                        pass

        run_hammer(worker)
        # Whatever survived is internally consistent.
        for name in registry.names():
            assert registry.stored_fingerprint(name) == registry.fingerprint(name)[0]

    def test_concurrent_resolution_is_stable(self):
        # Many threads resolving an unchanged model must all agree on the
        # fingerprint and none may report a phantom change: the
        # read-compare-store inside fingerprint() is atomic.
        registry = ModelRegistry()
        registry.register("m", small_model(0))
        registry.register("m", small_model(1))  # replacement stores its hash
        current, previous = registry.fingerprint("m")
        assert previous is None

        results = run_hammer(lambda index: registry.fingerprint("m"))
        assert all(fingerprint == current for fingerprint, _ in results)
        assert all(previous is None for _, previous in results)


class TestSampleBankHammer:
    @pytest.fixture()
    def bank(self):
        return SampleBank(
            small_model(3),
            settings=ChainSettings(burn_in=8, thinning=1),
            rng=7,
            initial_samples=4,
            max_samples=4096,
        )

    def test_concurrent_growth_is_append_only(self, bank):
        grown = run_hammer(lambda index: bank.grow(16))
        assert bank.n_samples == sum(grown)
        states = bank.states
        assert states.shape == (bank.n_samples, bank.model.n_edges)
        assert states.dtype == np.bool_

    def test_concurrent_queries_during_growth(self, bank):
        def worker(index):
            for _ in range(5):
                bank.grow(8)
                rows = bank.reach_rows(index % bank.model.graph.n_nodes)
                assert rows.shape[1] == bank.model.graph.n_nodes
                assert rows.shape[0] <= bank.n_samples

        run_hammer(worker, n_threads=4)
        # Reachability rows caught up to a consistent, rectangular shape.
        rows = bank.reach_rows(0)
        assert rows.shape == (bank.n_samples, bank.model.graph.n_nodes)

    def test_max_samples_respected_under_contention(self):
        bank = SampleBank(
            small_model(4),
            settings=ChainSettings(burn_in=4, thinning=1),
            rng=11,
            initial_samples=4,
            max_samples=64,
        )
        run_hammer(lambda index: bank.grow(32))
        assert bank.n_samples == 64
