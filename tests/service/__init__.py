"""Tests for the flow query service (repro.service)."""
