"""Streaming ingestion: events, the ingestor, fingerprint-delta invalidation.

The headline invariant pinned here: absorbing an event stream and then
querying answers bit-for-bit identically to batch-retraining on the
accumulated evidence and querying a fresh registration -- same seeds,
same bank growth schedule. And its dual: ingesting events for model A
leaves model B's banks and cached results untouched.
"""

import json
import threading
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.core.beta_icm import BetaICM
from repro.core.cascade import simulate_cascade
from repro.errors import EvidenceError, ServiceError
from repro.graph.digraph import DiGraph
from repro.graph.generators import random_beta_icm, random_icm
from repro.io import model_to_payload
from repro.learning.attributed import train_beta_icm
from repro.learning.evidence import (
    AttributedEvidence,
    attributed_from_cascade,
)
from repro.mcmc.chain import ChainSettings
from repro.service.api import FlowQueryService
from repro.service.ingest import (
    AdoptionEvent,
    StreamIngestor,
    event_from_payload,
    events_from_jsonl,
    events_to_jsonl,
    load_event_log,
)
from repro.service.queries import FlowQuery
from repro.service.server import make_server


def stream_events(model_name, icm, n_events, seed):
    """A deterministic adoption stream simulated from ``icm``."""
    rng = np.random.default_rng(seed)
    nodes = icm.graph.nodes()
    events = []
    for index in range(n_events):
        source = nodes[int(rng.integers(len(nodes)))]
        cascade = simulate_cascade(
            icm, [source], rng=int(rng.integers(2**31))
        )
        observation = attributed_from_cascade(icm, cascade)
        events.append(
            AdoptionEvent(
                model=model_name,
                sources=tuple(observation.sources),
                active_nodes=tuple(observation.active_nodes),
                active_edges=tuple(observation.active_edges),
                event_id=index,
            )
        )
    return events


class TestAdoptionEvent:
    def test_canonicalisation_dedupes_and_orders(self):
        event = AdoptionEvent(
            model="m",
            sources=("b", "a", "a"),
            active_nodes=("c", "b", "a", "c"),
            active_edges=(("b", "c"), ("a", "b"), ("b", "c")),
        )
        assert event.sources == ("a", "b")
        assert event.active_nodes == ("a", "b", "c")
        assert event.active_edges == (("a", "b"), ("b", "c"))

    def test_payload_round_trip(self):
        event = AdoptionEvent(
            model="m",
            sources=("a",),
            active_nodes=("a", "b"),
            active_edges=(("a", "b"),),
            event_id=7,
            timestamp=12.5,
        )
        payload = json.loads(json.dumps(event.to_payload()))
        assert event_from_payload(payload) == event

    def test_optional_fields_omitted_from_payload(self):
        event = AdoptionEvent(
            model="m", sources=("a",), active_nodes=("a",)
        )
        payload = event.to_payload()
        assert "event_id" not in payload and "timestamp" not in payload
        assert event_from_payload(payload) == event

    def test_empty_model_rejected(self):
        with pytest.raises(ServiceError, match="non-empty"):
            AdoptionEvent(model="", sources=("a",), active_nodes=("a",))

    def test_structural_validation_delegates_to_evidence(self):
        with pytest.raises(EvidenceError, match="sources must be active"):
            AdoptionEvent(model="m", sources=("a",), active_nodes=("b",))
        with pytest.raises(EvidenceError, match="inactive"):
            AdoptionEvent(
                model="m",
                sources=("a",),
                active_nodes=("a",),
                active_edges=(("a", "b"),),
            )

    def test_payload_missing_model_needs_default(self):
        payload = {"sources": ["a"], "active_nodes": ["a"]}
        with pytest.raises(ServiceError, match="'model'"):
            event_from_payload(payload)
        event = event_from_payload(payload, default_model="fallback")
        assert event.model == "fallback"
        # an explicit model wins over the default
        explicit = event_from_payload(
            dict(payload, model="named"), default_model="fallback"
        )
        assert explicit.model == "named"

    def test_payload_missing_field(self):
        with pytest.raises(ServiceError, match="missing field"):
            event_from_payload({"model": "m", "sources": ["a"]})

    def test_malformed_payload(self):
        with pytest.raises(ServiceError, match="src, dst"):
            event_from_payload(
                {
                    "model": "m",
                    "sources": ["a"],
                    "active_nodes": ["a"],
                    "active_edges": [["a"]],  # not a pair
                }
            )


class TestEventLog:
    def test_jsonl_round_trip(self, tmp_path):
        icm = random_icm(12, 40, rng=3)
        events = stream_events("m", icm, 10, seed=5)
        path = str(tmp_path / "stream.jsonl")
        assert events_to_jsonl(events, path) == 10
        assert load_event_log(path) == events

    def test_json_array_accepted(self, tmp_path):
        path = tmp_path / "events.json"
        path.write_text(
            json.dumps(
                [
                    {"sources": ["a"], "active_nodes": ["a", "b"]},
                    {"model": "named", "sources": ["b"], "active_nodes": ["b"]},
                ]
            )
        )
        events = load_event_log(str(path), default_model="fallback")
        assert [event.model for event in events] == ["fallback", "named"]

    def test_unreadable_log_raises(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("not json\n")
        with pytest.raises(ServiceError, match="unreadable event log"):
            load_event_log(str(path))


class TestEventsFromJsonlMalformed:
    """Malformed logs raise taxonomy errors, never raw json/KeyError.

    ``events_from_jsonl`` is the boundary compiled scenario artifacts and
    operator-supplied logs cross; every failure mode must surface as a
    :class:`ServiceError` with a message safe to show a remote caller.
    """

    GOOD_LINE = json.dumps(
        {"model": "m", "sources": ["a"], "active_nodes": ["a", "b"]}
    )

    def _write(self, tmp_path, text):
        path = tmp_path / "events.jsonl"
        path.write_text(text)
        return str(path)

    def test_is_the_canonical_alias_of_load_event_log(self, tmp_path):
        icm = random_icm(12, 40, rng=3)
        events = stream_events("m", icm, 5, seed=5)
        path = str(tmp_path / "stream.jsonl")
        events_to_jsonl(events, path)
        assert events_from_jsonl(path) == load_event_log(path)

    def test_truncated_line_raises_service_error(self, tmp_path):
        truncated = self.GOOD_LINE[: len(self.GOOD_LINE) // 2]
        path = self._write(tmp_path, f"{self.GOOD_LINE}\n{truncated}\n")
        with pytest.raises(ServiceError, match="unreadable event log"):
            events_from_jsonl(path)

    def test_garbage_line_raises_service_error(self, tmp_path):
        path = self._write(tmp_path, f"{self.GOOD_LINE}\n!!garbage!!\n")
        with pytest.raises(ServiceError, match="unreadable event log"):
            events_from_jsonl(path)

    def test_non_object_line_raises_service_error(self, tmp_path):
        # second line, so the leading-[ array heuristic does not kick in
        path = self._write(tmp_path, self.GOOD_LINE + '\n["a", "b"]\n')
        with pytest.raises(ServiceError, match="expected a JSON object"):
            events_from_jsonl(path)

    def test_unknown_key_raises_service_error(self, tmp_path):
        payload = {
            "model": "m",
            "source": ["a"],  # typo for "sources"
            "active_nodes": ["a"],
        }
        path = self._write(tmp_path, json.dumps(payload) + "\n")
        with pytest.raises(ServiceError, match="unknown field.*source"):
            events_from_jsonl(path)

    def test_sources_as_string_raises_service_error(self, tmp_path):
        payload = {"model": "m", "sources": "a", "active_nodes": ["a"]}
        path = self._write(tmp_path, json.dumps(payload) + "\n")
        with pytest.raises(ServiceError, match="array of nodes"):
            events_from_jsonl(path)

    def test_missing_sources_raises_service_error(self, tmp_path):
        payload = {"model": "m", "active_nodes": ["a"]}
        path = self._write(tmp_path, json.dumps(payload) + "\n")
        with pytest.raises(ServiceError, match="missing field 'sources'"):
            events_from_jsonl(path)

    def test_boolean_event_id_raises_service_error(self, tmp_path):
        payload = {
            "model": "m",
            "sources": ["a"],
            "active_nodes": ["a"],
            "event_id": True,
        }
        path = self._write(tmp_path, json.dumps(payload) + "\n")
        with pytest.raises(ServiceError, match="event_id.*integer"):
            events_from_jsonl(path)

    def test_string_timestamp_raises_service_error(self, tmp_path):
        payload = {
            "model": "m",
            "sources": ["a"],
            "active_nodes": ["a"],
            "timestamp": "yesterday",
        }
        path = self._write(tmp_path, json.dumps(payload) + "\n")
        with pytest.raises(ServiceError, match="timestamp.*number"):
            events_from_jsonl(path)

    def test_malformed_edge_pair_raises_service_error(self, tmp_path):
        payload = {
            "model": "m",
            "sources": ["a"],
            "active_nodes": ["a", "b"],
            "active_edges": [["a", "b", "c"]],
        }
        path = self._write(tmp_path, json.dumps(payload) + "\n")
        with pytest.raises(ServiceError, match="src, dst"):
            events_from_jsonl(path)

    def test_never_raises_raw_decoding_errors(self, tmp_path):
        """The whole corpus of broken inputs maps onto ServiceError."""
        cases = [
            "{",
            '{"model": "m"}',
            '{"model": "m", "sources": 3, "active_nodes": []}',
            '{"model": "m", "sources": ["a"], "active_nodes": "a"}',
            '{"model": "m", "sources": ["a"], "active_nodes": ["a"], '
            '"active_edges": "ab"}',
            "null",
            "[{}]",
        ]
        for text in cases:
            path = self._write(tmp_path, text + "\n")
            with pytest.raises(ServiceError):
                events_from_jsonl(path)


class TestStreamIngestor:
    def make_service(self):
        return FlowQueryService(
            settings=ChainSettings(burn_in=20, thinning=1), rng=0
        )

    def test_track_unknown_model(self):
        ingestor = StreamIngestor(self.make_service())
        with pytest.raises(ServiceError, match="no model registered"):
            ingestor.track("missing")

    def test_track_point_icm_rejected(self):
        service = self.make_service()
        service.register("point", random_icm(8, 20, rng=0))
        ingestor = StreamIngestor(service)
        with pytest.raises(ServiceError, match="without edge posteriors"):
            ingestor.track("point")

    def test_absorb_auto_tracks_and_counts(self):
        graph = DiGraph(edges=[("a", "b"), ("b", "c")])
        service = self.make_service()
        service.register("m", BetaICM.uniform_prior(graph))
        ingestor = StreamIngestor(service)
        report = ingestor.absorb(
            AdoptionEvent(
                model="m",
                sources=("a",),
                active_nodes=("a", "b"),
                active_edges=(("a", "b"),),
            )
        )
        assert ingestor.tracked() == ["m"]
        assert report.n_events == 1
        published = service.registry.get("m")
        # edge (a, b) succeeded, edge (b, c) failed
        assert published.edge_parameters("a", "b") == (2.0, 1.0)
        assert published.edge_parameters("b", "c") == (1.0, 2.0)

    def test_tracking_resumes_from_registered_posterior(self):
        graph = DiGraph(edges=[("a", "b")])
        service = self.make_service()
        service.register(
            "m",
            BetaICM.uniform_prior(graph).observe(
                {("a", "b"): 4}, {("a", "b"): 2}
            ),
        )
        ingestor = StreamIngestor(service)
        ingestor.absorb(
            AdoptionEvent(
                model="m",
                sources=("a",),
                active_nodes=("a", "b"),
                active_edges=(("a", "b"),),
            )
        )
        published = service.registry.get("m")
        assert published.edge_parameters("a", "b") == (6.0, 3.0)

    def test_batch_republishes_each_model_once(self):
        graph = DiGraph(edges=[("a", "b"), ("b", "c")])
        service = self.make_service()
        service.register("one", BetaICM.uniform_prior(graph))
        service.register("two", BetaICM.uniform_prior(graph))
        ingestor = StreamIngestor(service)
        event = {"sources": ("a",), "active_nodes": ("a", "b"),
                 "active_edges": (("a", "b"),)}
        report = ingestor.absorb_batch(
            [
                AdoptionEvent(model="one", **event),
                AdoptionEvent(model="two", **event),
                AdoptionEvent(model="one", **event),
            ]
        )
        assert report.n_events == 3
        by_name = {p.name: p for p in report.publications}
        assert by_name["one"].n_events == 2
        assert by_name["two"].n_events == 1
        snapshot = ingestor.snapshot()
        assert snapshot["events_absorbed"] == 3
        assert snapshot["batches"] == 1
        assert snapshot["models_republished"] == 2

    def test_no_op_batch_publishes_same_fingerprint(self):
        # "b" has no out-edges: the event carries zero Bernoulli trials,
        # so the posterior (and its fingerprint) is unchanged.
        graph = DiGraph(edges=[("a", "b")])
        service = self.make_service()
        before = service.register("m", BetaICM.uniform_prior(graph))
        ingestor = StreamIngestor(service)
        report = ingestor.absorb(
            AdoptionEvent(model="m", sources=("b",), active_nodes=("b",))
        )
        publication = report.publications[0]
        assert publication.fingerprint == before
        assert publication.previous_fingerprint is None
        assert publication.banks_dropped == 0
        assert publication.results_purged == 0

    def test_unknown_model_mid_batch_publishes_nothing(self):
        graph = DiGraph(edges=[("a", "b")])
        service = self.make_service()
        before = service.register("m", BetaICM.uniform_prior(graph))
        ingestor = StreamIngestor(service)
        good = AdoptionEvent(
            model="m", sources=("a",), active_nodes=("a", "b"),
            active_edges=(("a", "b"),),
        )
        bad = AdoptionEvent(
            model="ghost", sources=("a",), active_nodes=("a",)
        )
        with pytest.raises(ServiceError, match="ghost"):
            ingestor.absorb_batch([good, bad])
        # publication happens after the loop, so the registered model
        # still carries its pre-batch fingerprint
        assert service.registry.stored_fingerprint("m") == before

    def test_grow_topology_accepts_new_structure(self):
        graph = DiGraph(edges=[("a", "b")])
        service = self.make_service()
        service.register("m", BetaICM.uniform_prior(graph))
        strict = StreamIngestor(service)
        novel = AdoptionEvent(
            model="m",
            sources=("a",),
            active_nodes=("a", "zz"),
            active_edges=(("a", "zz"),),
        )
        with pytest.raises(EvidenceError):
            strict.absorb(novel)
        growing = StreamIngestor(service, grow_topology=True)
        growing.absorb(novel)
        published = service.registry.get("m")
        assert published.edge_parameters("a", "zz") == (2.0, 1.0)


class TestFingerprintDelta:
    def test_ingest_model_a_leaves_model_b_untouched(self):
        service = FlowQueryService(
            settings=ChainSettings(burn_in=20, thinning=1), rng=0
        )
        model_a = random_beta_icm(12, 40, rng=1)
        model_b = random_beta_icm(12, 40, rng=2)
        fp_a = service.register("a", model_a)
        fp_b = service.register("b", model_b)

        nodes_a = model_a.graph.nodes()
        nodes_b = model_b.graph.nodes()
        query_a = FlowQuery.marginal(nodes_a[0], nodes_a[5])
        query_b = FlowQuery.marginal(nodes_b[0], nodes_b[5])
        answer_b = service.query("b", query_b, n_samples=32)
        service.query("a", query_a, n_samples=32)
        planner_b = service._planners[fp_b]

        truth = random_icm(12, 40, rng=1)
        report = StreamIngestor(service).absorb_batch(
            stream_events("a", truth, 5, seed=9)
        )
        publication = report.publications[0]
        assert publication.previous_fingerprint == fp_a
        assert publication.fingerprint != fp_a
        assert publication.banks_dropped >= 1
        assert publication.results_purged == 1

        # model A's artifacts are gone ...
        assert fp_a not in service._planners
        assert service.registry.stored_fingerprint("a") == (
            publication.fingerprint
        )
        # ... while model B keeps the very same planner (banks warm) and
        # its cached answer
        assert service._planners[fp_b] is planner_b
        again_b = service.query("b", query_b, n_samples=32)
        assert again_b.cached
        assert again_b.value == answer_b.value

    def test_queries_after_publish_use_the_new_posterior(self):
        graph = DiGraph(edges=[("a", "b")])
        service = FlowQueryService(
            settings=ChainSettings(burn_in=20, thinning=1), rng=0
        )
        # an extreme prior: edge (a, b) almost surely active
        service.register(
            "m", BetaICM.uniform_prior(graph).observe({("a", "b"): 500}, {})
        )
        query = FlowQuery.marginal("a", "b")
        high = service.query("m", query, n_samples=64)
        assert high.value > 0.9

        # stream evidence that the edge essentially never fires
        ingestor = StreamIngestor(service)
        dead = AdoptionEvent(model="m", sources=("a",), active_nodes=("a",))
        ingestor.absorb_batch([dead] * 2000)
        low = service.query("m", query, n_samples=64)
        assert not low.cached
        assert low.value < 0.5


class TestStreamEqualsBatchInvariant:
    def test_stream_then_query_equals_batch_retrain_then_query(self):
        """The pinned invariant, end to end and bit for bit."""
        truth = random_icm(30, 90, rng=7)
        events = stream_events("m", truth, 24, seed=11)
        settings = ChainSettings(burn_in=50, thinning=5)
        nodes = truth.graph.nodes()
        queries = [
            FlowQuery.marginal(nodes[0], nodes[9]),
            FlowQuery.impact(nodes[0]),
        ]

        streamed_service = FlowQueryService(settings=settings, rng=123)
        streamed_service.register(
            "m", BetaICM.uniform_prior(truth.graph)
        )
        ingestor = StreamIngestor(streamed_service)
        for start in range(0, len(events), 8):  # three batches
            ingestor.absorb_batch(events[start:start + 8])
        streamed_answers = streamed_service.query_batch(
            "m", queries, n_samples=64
        )

        batch_service = FlowQueryService(settings=settings, rng=123)
        batch_model = train_beta_icm(
            truth.graph.copy(),
            AttributedEvidence(
                [event.to_observation() for event in events]
            ),
        )
        batch_service.register("m", batch_model)
        batch_answers = batch_service.query_batch("m", queries, n_samples=64)

        streamed = streamed_service.registry.get("m")
        assert np.array_equal(streamed.alphas, batch_model.alphas)
        assert np.array_equal(streamed.betas, batch_model.betas)
        for mine, theirs in zip(streamed_answers, batch_answers):
            assert mine.value == theirs.value
            assert mine.ess == theirs.ess


@pytest.fixture(scope="module")
def ingest_server():
    service = FlowQueryService(
        settings=ChainSettings(burn_in=20, thinning=1), rng=0
    )
    ingestor = StreamIngestor(service)
    server = make_server(service, port=0, quiet=True, ingestor=ingestor)
    host, port = server.server_address[:2]
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield f"http://{host}:{port}"
    server.shutdown()
    server.server_close()


def _post(url, payload):
    request = urllib.request.Request(
        url,
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=30) as response:
        return json.loads(response.read())


def _get(url):
    with urllib.request.urlopen(url, timeout=30) as response:
        return json.loads(response.read())


class TestHttpIngest:
    def test_post_ingest_round_trip(self, ingest_server):
        graph = DiGraph(edges=[("a", "b"), ("b", "c")])
        _post(
            f"{ingest_server}/models/stream",
            model_to_payload(BetaICM.uniform_prior(graph)),
        )
        report = _post(
            f"{ingest_server}/ingest",
            {
                "model": "stream",
                "events": [
                    {
                        "sources": ["a"],
                        "active_nodes": ["a", "b"],
                        "active_edges": [["a", "b"]],
                    },
                    {"sources": ["c"], "active_nodes": ["c"]},
                ],
            },
        )
        assert report["n_events"] == 2
        (publication,) = report["publications"]
        assert publication["name"] == "stream"
        assert publication["n_events"] == 2
        assert publication["previous_fingerprint"] is not None

        status = _get(f"{ingest_server}/statusz")
        assert status["ingest"]["events_absorbed"] == 2
        assert status["ingest"]["tracked_models"] == ["stream"]

        # a single-event body works too
        single = _post(
            f"{ingest_server}/ingest",
            {
                "event": {
                    "model": "stream",
                    "sources": ["b"],
                    "active_nodes": ["b", "c"],
                    "active_edges": [["b", "c"]],
                }
            },
        )
        assert single["n_events"] == 1

    def test_bad_event_payload_is_400(self, ingest_server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _post(
                f"{ingest_server}/ingest",
                {"model": "stream", "events": [{"sources": ["a"]}]},
            )
        assert excinfo.value.code == 400
        body = json.loads(excinfo.value.read())
        assert "missing field" in body["error"]

    def test_events_must_be_a_list(self, ingest_server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _post(
                f"{ingest_server}/ingest",
                {"model": "stream", "events": {"sources": ["a"]}},
            )
        assert excinfo.value.code == 400

    def test_ingest_disabled_is_400(self):
        service = FlowQueryService(rng=0)
        server = make_server(service, port=0, quiet=True)
        host, port = server.server_address[:2]
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _post(
                    f"http://{host}:{port}/ingest",
                    {"model": "m", "events": []},
                )
            assert excinfo.value.code == 400
            body = json.loads(excinfo.value.read())
            assert "ingestion is disabled" in body["error"]
        finally:
            server.shutdown()
            server.server_close()

    def test_make_server_rejects_foreign_ingestor(self):
        service = FlowQueryService(rng=0)
        other = FlowQueryService(rng=0)
        with pytest.raises(ServiceError, match="must wrap the served"):
            make_server(
                service, port=0, quiet=True, ingestor=StreamIngestor(other)
            )
