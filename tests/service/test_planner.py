"""QueryPlanner: grouping by condition set and answer correctness."""

import numpy as np
import pytest

from repro.errors import ServiceError
from repro.graph.generators import random_icm
from repro.mcmc.chain import ChainSettings
from repro.service.planner import QueryPlanner
from repro.service.queries import FlowQuery


@pytest.fixture(scope="module")
def model():
    return random_icm(25, 80, rng=3, probability_range=(0.1, 0.9))


@pytest.fixture
def planner(model):
    return QueryPlanner(
        model, settings=ChainSettings(burn_in=20, thinning=1), rng=0
    )


def _nodes(model):
    return model.graph.nodes()


class TestGrouping:
    def test_unconditional_queries_share_one_bank(self, model, planner):
        nodes = _nodes(model)
        queries = [
            FlowQuery.marginal(nodes[0], nodes[5]),
            FlowQuery.joint([(nodes[0], nodes[5]), (nodes[1], nodes[6])]),
            FlowQuery.community(nodes[0], [nodes[3], nodes[4]]),
            FlowQuery.impact(nodes[0]),
        ]
        planner.answer(queries, n_samples=64)
        assert planner.n_banks == 1

    def test_condition_sets_get_separate_banks(self, model, planner):
        nodes = _nodes(model)
        queries = [
            FlowQuery.marginal(nodes[0], nodes[5]),
            FlowQuery.conditional(nodes[0], nodes[5], [(nodes[1], nodes[6], True)]),
        ]
        planner.answer(queries, n_samples=64)
        assert planner.n_banks == 2

    def test_given_flow_path_shares_conditional_bank(self, model, planner):
        # pick an edge so the path query is valid
        edge = next(model.graph.iter_edges())
        queries = [
            FlowQuery.path([edge.src, edge.dst]),
            FlowQuery.conditional(
                edge.src, edge.dst, [(edge.src, edge.dst, True)]
            ),
        ]
        planner.answer(queries, n_samples=64)
        assert planner.n_banks == 1


class TestAnswers:
    def test_marginal_matches_bank_indicator_mean(self, model, planner):
        nodes = _nodes(model)
        query = FlowQuery.marginal(nodes[0], nodes[8])
        result = planner.answer([query], n_samples=128)[0]
        bank = planner.bank(())
        position = model.graph.node_position
        indicator = bank.indicator(position(nodes[0]), position(nodes[8]))
        assert result.value == pytest.approx(float(indicator.mean()))
        assert result.n_samples == 128
        assert 1.0 <= result.ess <= 128.0
        assert result.std_error >= 0.0

    def test_joint_is_and_of_indicators(self, model, planner):
        nodes = _nodes(model)
        flows = [(nodes[0], nodes[8]), (nodes[1], nodes[9])]
        joint, first, second = planner.answer(
            [
                FlowQuery.joint(flows),
                FlowQuery.marginal(*flows[0]),
                FlowQuery.marginal(*flows[1]),
            ],
            n_samples=128,
        )
        assert joint.value <= min(first.value, second.value) + 1e-12

    def test_community_matches_marginals(self, model, planner):
        nodes = _nodes(model)
        members = [nodes[3], nodes[4], nodes[5]]
        community, *marginals = planner.answer(
            [FlowQuery.community(nodes[0], members)]
            + [FlowQuery.marginal(nodes[0], member) for member in members],
            n_samples=128,
        )
        for member, marginal in zip(members, marginals):
            assert community.value[member] == pytest.approx(marginal.value)

    def test_impact_distribution_normalises(self, model, planner):
        nodes = _nodes(model)
        result = planner.answer([FlowQuery.impact(nodes[2])], n_samples=128)[0]
        assert sum(result.value.values()) == pytest.approx(1.0)
        assert all(impact >= 0 for impact in result.value)
        assert list(result.value) == sorted(result.value)

    def test_path_probability_in_bounds(self, model, planner):
        edge = next(model.graph.iter_edges())
        given = planner.answer(
            [FlowQuery.path([edge.src, edge.dst])], n_samples=128
        )[0]
        assert 0.0 <= given.value <= 1.0
        # conditioned on the flow existing, a single-edge path is at
        # least as likely as without the conditioning
        bare = planner.answer(
            [FlowQuery.path([edge.src, edge.dst], given_flow=False)],
            n_samples=128,
        )[0]
        assert given.value >= bare.value - 0.15

    def test_results_in_input_order(self, model, planner):
        nodes = _nodes(model)
        queries = [
            FlowQuery.impact(nodes[1]),
            FlowQuery.marginal(nodes[0], nodes[5]),
            FlowQuery.conditional(nodes[0], nodes[5], [(nodes[1], nodes[6], True)]),
        ]
        results = planner.answer(queries, n_samples=64)
        assert [result.query for result in results] == queries

    def test_banks_persist_across_batches(self, model, planner):
        nodes = _nodes(model)
        planner.answer([FlowQuery.marginal(nodes[0], nodes[5])], n_samples=64)
        bank = planner.bank(())
        assert bank.n_samples == 64
        planner.answer([FlowQuery.marginal(nodes[1], nodes[6])], n_samples=128)
        assert planner.bank(()) is bank
        assert bank.n_samples == 128

    def test_target_ess_forwarded(self, model, planner):
        nodes = _nodes(model)
        result = planner.answer(
            [FlowQuery.marginal(nodes[0], nodes[5])], target_ess=30.0
        )[0]
        bank = planner.bank(())
        assert bank.ess() >= 30.0 or bank.n_samples == 65_536

    def test_rejects_non_queries(self, planner):
        with pytest.raises(ServiceError, match="FlowQuery"):
            planner.answer(["not a query"])

    def test_rejects_unknown_nodes(self, model, planner):
        with pytest.raises(Exception):
            planner.answer([FlowQuery.marginal("nope", "also-nope")])


class TestDeterminism:
    def test_seeded_planners_agree(self, model):
        nodes = _nodes(model)
        queries = [
            FlowQuery.marginal(nodes[0], nodes[5]),
            FlowQuery.impact(nodes[1]),
        ]
        settings = ChainSettings(burn_in=20, thinning=1)
        first = QueryPlanner(model, settings=settings, rng=7).answer(
            queries, n_samples=64
        )
        second = QueryPlanner(model, settings=settings, rng=7).answer(
            queries, n_samples=64
        )
        assert [r.value for r in first] == [r.value for r in second]
