"""Observability reads must never block behind an in-flight query."""

import json
import threading
import urllib.request

import pytest

from repro.graph.generators import random_icm
from repro.mcmc.chain import ChainSettings
from repro.service.api import FlowQueryService
from repro.service.queries import FlowQuery
from repro.service.server import make_server

#: Generous bound for "returned immediately"; a blocked read would hang
#: until the lock-holder releases, far beyond this.
TIMEOUT_SECONDS = 10.0


def _call_with_timeout(function):
    """Run ``function`` in a thread; fail the test if it doesn't return."""
    box = {}

    def runner():
        box["result"] = function()

    thread = threading.Thread(target=runner, daemon=True)
    thread.start()
    thread.join(TIMEOUT_SECONDS)
    assert not thread.is_alive(), "observability read blocked behind a lock"
    return box["result"]


@pytest.fixture
def busy_service():
    """A service with one materialised bank whose sample lock is held,
    simulating a query minutes into sampling."""
    service = FlowQueryService(
        settings=ChainSettings(burn_in=10, thinning=1),
        rng=0,
        default_n_samples=32,
    )
    model = random_icm(10, 20, rng=1)
    service.register("m", model)
    nodes = model.graph.nodes()
    query = FlowQuery(kind="marginal", flows=((nodes[0], nodes[1]),))
    service.query_batch("m", [query])

    (planner,) = service._planners.values()
    (bank,) = planner._banks.values()
    bank._lock.acquire()
    try:
        yield service
    finally:
        bank._lock.release()


class TestStatuszNeverBlocks:
    def test_statusz_returns_while_bank_lock_is_held(self, busy_service):
        status = _call_with_timeout(busy_service.statusz)
        # the busy bank is still reported -- from its status cache, as
        # of its last completed growth
        (planner_status,) = status["planners"].values()
        (bank_status,) = planner_status["banks"]
        assert bank_status["n_samples"] == 32
        assert bank_status["growths"] >= 1

    def test_bank_snapshot_returns_while_locked(self, busy_service):
        (planner,) = busy_service._planners.values()
        (bank,) = planner._banks.values()
        snapshot = _call_with_timeout(bank.snapshot)
        assert snapshot["n_samples"] == 32


class TestHttpEndpointsNeverBlock:
    def test_metrics_and_statusz_respond_mid_query(self, busy_service):
        """/metrics and /statusz answer over HTTP while a bank's sample
        lock is held AND the server's query lock is held -- the handlers
        must take neither."""
        server = make_server(busy_service, port=0, quiet=True)
        host, port = server.server_address[:2]
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            with server.service_lock:  # an in-flight POST /query holds this
                for path in ("/metrics", "/statusz", "/models", "/healthz"):
                    def fetch(path=path):
                        with urllib.request.urlopen(
                            f"http://{host}:{port}{path}",
                            timeout=TIMEOUT_SECONDS,
                        ) as response:
                            return response.read()

                    body = _call_with_timeout(fetch)
                    assert body
                status = json.loads(
                    _call_with_timeout(
                        lambda: urllib.request.urlopen(
                            f"http://{host}:{port}/statusz",
                            timeout=TIMEOUT_SECONDS,
                        ).read()
                    )
                )
                assert "trace" in status
                assert status["models"] == {
                    "m": busy_service.registry.stored_fingerprint("m")
                }
        finally:
            server.shutdown()
            server.server_close()
