"""FlowQuery / QueryResult value types and payload round trips."""

import pytest

from repro.core.conditions import FlowConditionSet
from repro.errors import ServiceError
from repro.service.queries import FlowQuery, QueryResult, query_from_payload


class TestConstruction:
    def test_marginal(self):
        query = FlowQuery.marginal("a", "b")
        assert query.kind == "marginal"
        assert query.flows == (("a", "b"),)
        assert query.conditions == ()

    def test_conditional_requires_conditions(self):
        with pytest.raises(ServiceError, match="condition"):
            FlowQuery.conditional("a", "b", [])

    def test_conditional_is_marginal_kind(self):
        query = FlowQuery.conditional("a", "b", [("c", "d", True)])
        assert query.kind == "marginal"
        assert query.conditions == (("c", "d", True),)

    def test_joint_dedupes_and_requires_flows(self):
        query = FlowQuery.joint([("a", "b"), ("a", "b"), ("c", "d")])
        assert query.flows == (("a", "b"), ("c", "d"))
        with pytest.raises(ServiceError, match="at least one"):
            FlowQuery.joint([])

    def test_community(self):
        query = FlowQuery.community("a", ["b", "c", "b"])
        assert query.flows == (("a", "b"), ("a", "c"))

    def test_path_needs_two_nodes(self):
        with pytest.raises(ServiceError, match="two nodes"):
            FlowQuery.path(["a"])

    def test_conditions_canonicalised(self):
        first = FlowQuery.marginal("a", "b", [("x", "y", True), ("p", "q", False)])
        second = FlowQuery.marginal("a", "b", [("p", "q", False), ("x", "y", True)])
        assert first == second
        assert hash(first) == hash(second)

    def test_accepts_condition_set_object(self):
        conditions = FlowConditionSet.from_tuples([("x", "y", True)])
        query = FlowQuery.marginal("a", "b", conditions)
        assert query.conditions == (("x", "y", True),)

    def test_contradictory_conditions_rejected(self):
        with pytest.raises(Exception):
            FlowQuery.marginal("a", "b", [("x", "y", True), ("x", "y", False)])


class TestSemantics:
    def test_path_given_flow_folds_into_conditions(self):
        query = FlowQuery.path(["a", "b", "c"])
        assert ("a", "c", True) in query.effective_conditions()
        bare = FlowQuery.path(["a", "b", "c"], given_flow=False)
        assert bare.effective_conditions() == ()

    def test_path_groups_with_matching_conditional(self):
        path = FlowQuery.path(["a", "b", "c"])
        conditional = FlowQuery.conditional("x", "y", [("a", "c", True)])
        assert path.effective_conditions() == conditional.effective_conditions()

    def test_source_nodes(self):
        assert FlowQuery.marginal("a", "b").source_nodes() == ("a",)
        assert FlowQuery.joint([("a", "b"), ("c", "d")]).source_nodes() == ("a", "c")
        assert FlowQuery.impact("a").source_nodes() == ("a",)
        assert FlowQuery.path(["a", "b"]).source_nodes() == ()


class TestPayloads:
    @pytest.mark.parametrize(
        "query",
        [
            FlowQuery.marginal("a", "b"),
            FlowQuery.conditional("a", "b", [("c", "d", True)]),
            FlowQuery.joint([("a", "b"), ("c", "d")]),
            FlowQuery.community("a", ["b", "c"]),
            FlowQuery.path(["a", "b", "c"], given_flow=False),
            FlowQuery.impact("a"),
        ],
    )
    def test_round_trip(self, query):
        assert query_from_payload(query.to_payload()) == query

    def test_unknown_kind_rejected(self):
        with pytest.raises(ServiceError, match="unknown query kind"):
            query_from_payload({"kind": "mystery"})

    def test_missing_field_rejected(self):
        with pytest.raises(ServiceError, match="missing field"):
            query_from_payload({"kind": "marginal", "source": "a"})

    def test_result_payload_serialises_nan_and_dict_keys(self):
        result = QueryResult(
            query=FlowQuery.impact("a"),
            value={0: 0.5, 3: 0.5},
            n_samples=10,
            ess=float("nan"),
        )
        payload = result.to_payload()
        assert payload["value"] == {"0": 0.5, "3": 0.5}
        assert payload["ess"] is None
        assert payload["std_error"] is None
        assert payload["cached"] is False
