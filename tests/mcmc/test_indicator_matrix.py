"""Batched indicator-matrix evaluation and chain sample-matrix helpers."""

import numpy as np
import pytest

from repro.graph.csr import reachable_csr
from repro.graph.generators import random_icm
from repro.mcmc.chain import ChainSettings, MetropolisHastingsChain
from repro.mcmc.flow_estimator import flow_indicator_matrix, reachability_matrices


@pytest.fixture(scope="module")
def model():
    return random_icm(25, 80, rng=11, probability_range=(0.1, 0.9))


@pytest.fixture(scope="module")
def states(model):
    rng = np.random.default_rng(5)
    return np.stack([model.sample_pseudo_state(rng) for _ in range(40)])


class TestReachabilityMatrices:
    def test_matches_per_state_reachability(self, model, states):
        csr = model.graph.csr()
        positions = [0, 3, 7]
        rows = reachability_matrices(csr, states, positions)
        assert set(rows) == set(positions)
        for position in positions:
            assert rows[position].shape == (states.shape[0], model.n_nodes)
            for index in range(states.shape[0]):
                expected = reachable_csr(csr, (position,), states[index])
                np.testing.assert_array_equal(rows[position][index], expected)

    def test_source_always_reaches_itself(self, model, states):
        rows = reachability_matrices(model.graph.csr(), states, [4])
        assert rows[4][:, 4].all()

    def test_rejects_bad_state_shape(self, model, states):
        with pytest.raises(ValueError, match="states"):
            reachability_matrices(model.graph.csr(), states[:, :-1], [0])


class TestFlowIndicatorMatrix:
    def test_columns_match_reachability(self, model, states):
        nodes = model.graph.nodes()
        pairs = [(nodes[0], nodes[9]), (nodes[3], nodes[1])]
        matrix = flow_indicator_matrix(model, states, pairs)
        assert matrix.shape == (states.shape[0], len(pairs))
        csr = model.graph.csr()
        position = model.graph.node_position
        for column, (source, sink) in enumerate(pairs):
            for index in range(states.shape[0]):
                reached = reachable_csr(csr, (position(source),), states[index])
                assert matrix[index, column] == reached[position(sink)]


class TestSampleStateMatrix:
    def test_matches_iterated_samples(self, model):
        settings = ChainSettings(burn_in=20, thinning=2)
        first = MetropolisHastingsChain(
            model, settings=settings, rng=np.random.default_rng(3)
        )
        second = MetropolisHastingsChain(
            model, settings=settings, rng=np.random.default_rng(3)
        )
        matrix = first.sample_state_matrix(15)
        iterated = np.stack(list(second.samples(15)))
        np.testing.assert_array_equal(matrix, iterated)

    def test_continuation_does_not_reburn(self, model):
        settings = ChainSettings(burn_in=10, thinning=1)
        chain = MetropolisHastingsChain(
            model, settings=settings, rng=np.random.default_rng(3)
        )
        chain.sample_state_matrix(5)
        steps_after_first = chain.steps
        chain.sample_state_matrix(5)
        # second batch pays only per-sample strides, no second burn-in
        assert chain.steps - steps_after_first == 5 * (settings.thinning + 1)


class TestSampleUntilEss:
    def test_reaches_target_or_cap(self, model):
        chain = MetropolisHastingsChain(
            model,
            settings=ChainSettings(burn_in=20, thinning=2),
            rng=np.random.default_rng(7),
        )
        states = chain.sample_until_ess(
            30.0, initial_samples=16, max_samples=2048
        )
        from repro.mcmc.diagnostics import effective_sample_size

        achieved = effective_sample_size(states.sum(axis=1).astype(float))
        assert achieved >= 30.0 or states.shape[0] == 2048

    def test_rejects_bad_target(self, model):
        chain = MetropolisHastingsChain(model, rng=np.random.default_rng(7))
        with pytest.raises(ValueError):
            chain.sample_until_ess(0.0)
