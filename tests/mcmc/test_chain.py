"""Unit and distributional tests for the Metropolis-Hastings chain."""

import numpy as np
import pytest

from repro.core.conditions import FlowConditionSet
from repro.core.icm import ICM
from repro.errors import InfeasibleConditionsError, SamplingError
from repro.graph.digraph import DiGraph
from repro.mcmc.chain import ChainSettings, MetropolisHastingsChain, build_feasible_state


class TestSettings:
    def test_defaults(self):
        settings = ChainSettings()
        assert settings.burn_in >= 0
        assert settings.thinning >= 0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            ChainSettings(burn_in=-1)
        with pytest.raises(ValueError):
            ChainSettings(thinning=-1)
        with pytest.raises(ValueError):
            ChainSettings(max_init_attempts=0)


class TestUnconditionalChain:
    def test_stationary_marginals_match_edge_probabilities(self, triangle_icm):
        """The chain's per-edge activity frequencies converge to p_i."""
        chain = MetropolisHastingsChain(
            triangle_icm,
            settings=ChainSettings(burn_in=500, thinning=2),
            rng=0,
        )
        totals = np.zeros(3)
        n = 20_000
        for _ in range(n):
            chain.advance(3)
            totals += chain.state_view
        assert np.allclose(
            totals / n, triangle_icm.edge_probabilities, atol=0.02
        )

    def test_point_mass_model_is_stuck_correctly(self):
        graph = DiGraph(edges=[("a", "b"), ("b", "c")])
        model = ICM(graph, [0.0, 1.0])
        chain = MetropolisHastingsChain(model, settings=ChainSettings(burn_in=10), rng=0)
        for _ in range(20):
            chain.step()
            assert chain.state.tolist() == [False, True]

    def test_respects_deterministic_edges(self, rng):
        graph = DiGraph(edges=[("a", "b"), ("b", "c"), ("c", "a")])
        model = ICM(graph, [1.0, 0.5, 0.0])
        chain = MetropolisHastingsChain(model, rng=rng)
        for _ in range(200):
            chain.step()
            state = chain.state_view
            assert state[0] and not state[2]

    def test_acceptance_rate_tracked(self, triangle_icm):
        chain = MetropolisHastingsChain(
            triangle_icm, settings=ChainSettings(burn_in=100), rng=1
        )
        assert 0.0 < chain.acceptance_rate <= 1.0
        assert chain.steps == 100

    def test_draw_advances_thinning(self, triangle_icm):
        settings = ChainSettings(burn_in=0, thinning=9)
        chain = MetropolisHastingsChain(triangle_icm, settings=settings, rng=2)
        chain.draw()
        assert chain.steps == 10

    def test_samples_yields_copies(self, triangle_icm):
        chain = MetropolisHastingsChain(
            triangle_icm, settings=ChainSettings(burn_in=10, thinning=0), rng=3
        )
        samples = list(chain.samples(5))
        assert len(samples) == 5
        samples[0][:] = True  # mutating a copy must not touch the chain
        assert chain.state is not samples[0]

    def test_explicit_initial_state(self, triangle_icm):
        state = np.array([True, False, True])
        chain = MetropolisHastingsChain(
            triangle_icm,
            settings=ChainSettings(burn_in=0),
            initial_state=state,
            rng=4,
        )
        assert chain.steps == 0

    def test_invalid_initial_state_rejected(self):
        graph = DiGraph(edges=[("a", "b")])
        model = ICM(graph, [0.0])
        with pytest.raises(SamplingError, match="zero-probability"):
            MetropolisHastingsChain(
                model,
                initial_state=np.array([True]),
                settings=ChainSettings(burn_in=0),
            )
        model_one = ICM(graph, [1.0])
        with pytest.raises(SamplingError, match="probability-one"):
            MetropolisHastingsChain(
                model_one,
                initial_state=np.array([False]),
                settings=ChainSettings(burn_in=0),
            )


class TestConditionalChain:
    def test_all_states_satisfy_conditions(self, triangle_icm):
        conditions = FlowConditionSet.from_tuples(
            [("v1", "v3", True), ("v2", "v3", False)]
        )
        # v1;v3 but not v2;v3: only the direct arc v1->v3 may carry flow.
        chain = MetropolisHastingsChain(
            triangle_icm,
            conditions=conditions,
            settings=ChainSettings(burn_in=100),
            rng=5,
        )
        for _ in range(300):
            chain.step()
            assert conditions.satisfied(triangle_icm, chain.state_view)

    def test_conditional_distribution_matches_enumeration(self, chain_icm):
        """Pr[a;c | a;b] = 0.5 exactly; the chain must agree."""
        from repro.core.pseudo_state import flow_exists

        conditions = FlowConditionSet.from_tuples([("a", "b", True)])
        chain = MetropolisHastingsChain(
            chain_icm,
            conditions=conditions,
            settings=ChainSettings(burn_in=500, thinning=4),
            rng=6,
        )
        hits = 0
        n = 8000
        for _ in range(n):
            chain.advance(5)
            if flow_exists(chain_icm, "a", "c", chain.state_view):
                hits += 1
        assert hits / n == pytest.approx(0.5, abs=0.03)

    def test_infeasible_required_flow(self, triangle_icm):
        conditions = FlowConditionSet.from_tuples([("v3", "v1", True)])
        with pytest.raises(InfeasibleConditionsError, match="no positive"):
            MetropolisHastingsChain(triangle_icm, conditions=conditions, rng=7)

    def test_contradictory_flows_detected(self, chain_icm):
        # require a;c but forbid a;b: the only a->c route goes through b.
        conditions = FlowConditionSet.from_tuples(
            [("a", "c", True), ("a", "b", False)]
        )
        with pytest.raises(InfeasibleConditionsError):
            MetropolisHastingsChain(
                chain_icm,
                conditions=conditions,
                settings=ChainSettings(max_init_attempts=10),
                rng=8,
            )


class TestBuildFeasibleState:
    def test_unconditional_base_state(self, triangle_icm):
        state = build_feasible_state(triangle_icm, FlowConditionSet.empty(), rng=0)
        assert not state.any()  # no p=1 edges in the triangle fixture

    def test_probability_one_edges_forced_on(self):
        graph = DiGraph(edges=[("a", "b"), ("b", "c")])
        model = ICM(graph, [1.0, 0.5])
        state = build_feasible_state(model, FlowConditionSet.empty(), rng=0)
        assert state[0]
        assert not state[1]

    def test_required_path_activated(self, triangle_icm):
        conditions = FlowConditionSet.from_tuples([("v1", "v3", True)])
        state = build_feasible_state(triangle_icm, conditions, rng=1)
        assert conditions.satisfied(triangle_icm, state)

    def test_forbidden_only(self, triangle_icm):
        conditions = FlowConditionSet.from_tuples([("v1", "v3", False)])
        state = build_feasible_state(triangle_icm, conditions, rng=2)
        assert conditions.satisfied(triangle_icm, state)

    def test_zero_probability_paths_not_used(self):
        graph = DiGraph(edges=[("a", "b"), ("a", "c"), ("c", "b")])
        model = ICM(graph, [0.0, 0.5, 0.5])  # direct a->b impossible
        conditions = FlowConditionSet.from_tuples([("a", "b", True)])
        state = build_feasible_state(model, conditions, rng=3)
        assert not state[0]
        assert state[1] and state[2]


class TestConditionEdgeCases:
    def test_forbidden_flow_forced_by_certain_edge_is_infeasible(self):
        """A p=1 edge must be active in every positive-probability state;
        forbidding the flow it creates is therefore unsatisfiable."""
        graph = DiGraph(edges=[("a", "b")])
        model = ICM(graph, [1.0])
        conditions = FlowConditionSet.from_tuples([("a", "b", False)])
        with pytest.raises(InfeasibleConditionsError):
            MetropolisHastingsChain(
                model,
                conditions=conditions,
                settings=ChainSettings(max_init_attempts=5),
                rng=0,
            )

    def test_required_flow_via_certain_edge_is_free(self):
        graph = DiGraph(edges=[("a", "b"), ("b", "c")])
        model = ICM(graph, [1.0, 0.5])
        conditions = FlowConditionSet.from_tuples([("a", "b", True)])
        chain = MetropolisHastingsChain(
            model, conditions=conditions, settings=ChainSettings(burn_in=50), rng=1
        )
        # NOTE: with a single flippable p=0.5 edge the chain is *periodic*
        # (every proposal is accepted, so it alternates deterministically);
        # an odd stride avoids aliasing.  Real models have many edges and
        # are aperiodic in practice.
        hits = 0
        n = 4000
        for _ in range(n):
            chain.advance(3)
            hits += bool(chain.state_view[1])
        assert hits / n == pytest.approx(0.5, abs=0.04)

    def test_single_half_edge_chain_is_periodic(self):
        """Documents the degenerate corner: one flippable edge at p = 0.5
        gives acceptance exactly 1 every step, hence a period-2 chain.
        The stationary distribution is still correct; only stride-aliased
        reads see it wrong."""
        graph = DiGraph(edges=[("a", "b")])
        model = ICM(graph, [0.5])
        chain = MetropolisHastingsChain(
            model, settings=ChainSettings(burn_in=0), rng=2
        )
        previous = bool(chain.state_view[0])
        for _ in range(50):
            assert chain.step()  # always accepted
            current = bool(chain.state_view[0])
            assert current != previous
            previous = current

    def test_self_flow_conditions_are_vacuous(self, triangle_icm):
        conditions = FlowConditionSet.from_tuples([("v1", "v1", True)])
        chain = MetropolisHastingsChain(
            triangle_icm,
            conditions=conditions,
            settings=ChainSettings(burn_in=20),
            rng=2,
        )
        assert conditions.satisfied(triangle_icm, chain.state_view)

    def test_many_conditions_all_enforced(self, small_random_icm):
        """A handful of random feasible conditions all hold on every state."""
        from repro.core.pseudo_state import flow_exists

        rng = np.random.default_rng(3)
        nodes = small_random_icm.graph.nodes()
        # build conditions from an actual sampled state so they're feasible
        state = small_random_icm.sample_pseudo_state(rng)
        tuples = []
        for _ in range(4):
            u, v = rng.choice(len(nodes), size=2, replace=False)
            u, v = nodes[int(u)], nodes[int(v)]
            tuples.append((u, v, flow_exists(small_random_icm, u, v, state)))
        conditions = FlowConditionSet.from_tuples(tuples)
        chain = MetropolisHastingsChain(
            small_random_icm,
            conditions=conditions,
            settings=ChainSettings(burn_in=100),
            rng=4,
        )
        for _ in range(200):
            chain.step()
            assert conditions.satisfied(small_random_icm, chain.state_view)
