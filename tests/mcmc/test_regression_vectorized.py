"""Fixed-seed regressions: the vectorized engine reproduces the seed numbers.

The block-RNG ``run()`` kernel prefetches uniforms but consumes them in
exactly the order the original scalar ``step()`` loop drew them, and the
CSR kernels compute the same boolean reachability as the scalar BFS -- so
every estimate here must match the value produced by the pre-vectorization
implementation *bit for bit*, not just statistically.  The expected
constants below were captured by running the seed code at these seeds.
"""

import numpy as np
import pytest

from repro.core.conditions import FlowConditionSet
from repro.graph.generators import random_icm
from repro.mcmc.chain import ChainSettings, MetropolisHastingsChain
from repro.mcmc.flow_estimator import (
    estimate_conditional_flow_by_bayes,
    estimate_flow_probabilities,
    estimate_impact_distribution,
    estimate_joint_flow_probability,
    estimate_path_likelihood,
)


@pytest.fixture(scope="module")
def model():
    return random_icm(40, 120, rng=7, probability_range=(0.05, 0.9))


@pytest.fixture
def settings():
    return ChainSettings(burn_in=50, thinning=2)


class TestSeedGoldens:
    """Estimates captured from the pre-vectorization implementation."""

    def test_flow_probabilities(self, model, settings):
        nodes = model.graph.nodes()
        pairs = [(nodes[0], nodes[5]), (nodes[0], nodes[8]), (nodes[3], nodes[17])]
        estimates = estimate_flow_probabilities(
            model, pairs, n_samples=400, settings=settings, rng=123
        )
        assert [estimates[pair].probability for pair in pairs] == [
            0.2575,
            0.2675,
            0.195,
        ]

    def test_joint_flow(self, model, settings):
        nodes = model.graph.nodes()
        joint = estimate_joint_flow_probability(
            model,
            [(nodes[0], nodes[5]), (nodes[0], nodes[8])],
            n_samples=300,
            settings=settings,
            rng=124,
        )
        assert joint.probability == 0.04666666666666667

    def test_impact_distribution(self, model, settings):
        impact = estimate_impact_distribution(
            model, model.graph.nodes()[2], n_samples=300, settings=settings, rng=125
        )
        assert impact[0] == 0.20666666666666667
        assert impact[1] == 0.4066666666666667

    def test_conditional_flow_by_bayes(self, model, settings):
        nodes = model.graph.nodes()
        conditions = FlowConditionSet.from_tuples([(nodes[0], nodes[5], True)])
        estimate = estimate_conditional_flow_by_bayes(
            model,
            nodes[0],
            nodes[8],
            conditions,
            n_samples=400,
            settings=settings,
            rng=126,
        )
        assert estimate.probability == 0.47191011235955055
        assert estimate.n_samples == 89

    def test_path_likelihood(self, model, settings):
        edge = model.graph.edges()[0]
        estimate = estimate_path_likelihood(
            model,
            [edge.src, edge.dst],
            given_flow=True,
            n_samples=200,
            settings=settings,
            rng=129,
        )
        assert estimate.probability == 0.7

    def test_chain_trajectory(self, model):
        chain = MetropolisHastingsChain(
            model, settings=ChainSettings(burn_in=50, thinning=0), rng=999
        )
        chain.advance(500)
        assert chain.steps == 550
        expected_active = [
            4, 5, 7, 10, 12, 14, 15, 16, 18, 19, 20, 23, 25, 27, 29, 32, 35,
            36, 37, 38, 40, 41, 42, 49, 50, 51, 55, 56, 57, 58, 60, 64, 67,
            71, 72, 75, 78, 80, 81, 84, 87, 88, 90, 96, 97, 99, 100, 102,
            103, 104, 106, 108, 109, 111, 113, 115, 116, 119,
        ]
        assert np.flatnonzero(chain.state).tolist() == expected_active


class TestBatchingInvariance:
    """The trajectory is independent of how steps are grouped into run() calls."""

    def _twin_chains(self, model, conditions=None):
        return [
            MetropolisHastingsChain(
                model,
                conditions=conditions,
                settings=ChainSettings(burn_in=0, thinning=0),
                rng=np.random.default_rng(321),
            )
            for _ in range(2)
        ]

    def test_step_equals_run(self, model):
        stepped, batched = self._twin_chains(model)
        for _ in range(400):
            stepped.step()
        batched.run(400)
        np.testing.assert_array_equal(stepped.state, batched.state)
        assert stepped.steps == batched.steps
        assert stepped.accepted_steps == batched.accepted_steps

    def test_chunked_runs_equal_one_run(self, model):
        chunked, whole = self._twin_chains(model)
        rng = np.random.default_rng(5)
        remaining = 600
        while remaining:
            chunk = min(int(rng.integers(1, 97)), remaining)
            chunked.run(chunk)
            remaining -= chunk
        whole.run(600)
        np.testing.assert_array_equal(chunked.state, whole.state)
        assert chunked.accepted_steps == whole.accepted_steps

    def test_conditioned_chains_agree_and_respect_conditions(self, model):
        nodes = model.graph.nodes()
        conditions = FlowConditionSet.from_tuples(
            [(nodes[0], nodes[5], True), (nodes[3], nodes[17], False)]
        )
        stepped, batched = self._twin_chains(model, conditions)
        for _ in range(200):
            stepped.step()
        batched.run(200)
        np.testing.assert_array_equal(stepped.state, batched.state)
        assert conditions.satisfied(model, batched.state)

    def test_sample_states_matches_draw(self, model):
        settings = ChainSettings(burn_in=20, thinning=3)
        drawing = MetropolisHastingsChain(
            model, settings=settings, rng=np.random.default_rng(77)
        )
        streaming = MetropolisHastingsChain(
            model, settings=settings, rng=np.random.default_rng(77)
        )
        drawn = [drawing.draw().copy() for _ in range(25)]
        streamed = [state.copy() for state in streaming.sample_states(25)]
        for lhs, rhs in zip(drawn, streamed):
            np.testing.assert_array_equal(lhs, rhs)
