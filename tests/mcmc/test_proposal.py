"""Unit tests for the edge-flip proposal."""

import numpy as np
import pytest

from repro.core.icm import ICM
from repro.graph.digraph import DiGraph
from repro.mcmc.proposal import EdgeFlipProposal


@pytest.fixture
def model():
    graph = DiGraph(edges=[("a", "b"), ("b", "c"), ("a", "c")])
    return ICM(graph, [0.2, 0.5, 0.9])


class TestWeights:
    def test_initial_normaliser(self, model):
        # all inactive: weights are the activation probabilities
        state = np.zeros(3, dtype=bool)
        proposal = EdgeFlipProposal(model, state)
        assert proposal.normaliser == pytest.approx(0.2 + 0.5 + 0.9)

    def test_active_edges_weighted_by_complement(self, model):
        state = np.array([True, False, True])
        proposal = EdgeFlipProposal(model, state)
        assert proposal.normaliser == pytest.approx((1 - 0.2) + 0.5 + (1 - 0.9))

    def test_commit_updates_normaliser_incrementally(self, model):
        state = np.zeros(3, dtype=bool)
        proposal = EdgeFlipProposal(model, state)
        z_before = proposal.normaliser
        proposal.commit(0)  # activate edge 0 (p=0.2)
        # paper: Z' = Z + (-1)^{x_i} (1 - 2 p_i), x_i = 0
        assert proposal.normaliser == pytest.approx(z_before + (1 - 2 * 0.2))
        assert state[0]  # state mutated in place

    def test_commit_back_restores(self, model):
        state = np.zeros(3, dtype=bool)
        proposal = EdgeFlipProposal(model, state)
        z0 = proposal.normaliser
        proposal.commit(1)
        proposal.commit(1)
        assert proposal.normaliser == pytest.approx(z0)
        assert not state[1]


class TestPropose:
    def test_acceptance_is_normaliser_ratio(self, model):
        state = np.zeros(3, dtype=bool)
        proposal = EdgeFlipProposal(model, state)
        rng = np.random.default_rng(0)
        edge, acceptance = proposal.propose(rng)
        z = proposal.normaliser
        p = model.probability_by_index(edge)
        z_new = z + (1 - 2 * p)  # inactive -> active
        assert acceptance == pytest.approx(min(z / z_new, 1.0))

    def test_never_proposes_impossible_flip(self):
        graph = DiGraph(edges=[("a", "b"), ("b", "c")])
        model = ICM(graph, [0.0, 1.0])
        # valid support state: edge0 off, edge1 on
        state = np.array([False, True])
        proposal = EdgeFlipProposal(model, state)
        from repro.errors import SamplingError

        # both flip weights are zero -> no proposal possible
        with pytest.raises(SamplingError):
            proposal._tree.sample(np.random.default_rng(0))  # noqa: SLF001

    def test_proposal_frequencies(self, model):
        state = np.zeros(3, dtype=bool)
        proposal = EdgeFlipProposal(model, state)
        rng = np.random.default_rng(1)
        counts = np.zeros(3)
        n = 20_000
        for _ in range(n):
            edge, _ = proposal.propose(rng)
            counts[edge] += 1
        expected = np.array([0.2, 0.5, 0.9]) / 1.6
        assert np.allclose(counts / n, expected, atol=0.02)


class TestValidation:
    def test_wrong_shape_rejected(self, model):
        with pytest.raises(ValueError):
            EdgeFlipProposal(model, np.zeros(2, dtype=bool))

    def test_wrong_dtype_rejected(self, model):
        with pytest.raises(ValueError):
            EdgeFlipProposal(model, np.zeros(3, dtype=int))

    def test_reset(self, model):
        state = np.zeros(3, dtype=bool)
        proposal = EdgeFlipProposal(model, state)
        new_state = np.ones(3, dtype=bool)
        proposal.reset(new_state)
        assert proposal.state is new_state
        assert proposal.normaliser == pytest.approx(0.8 + 0.5 + 0.1)
