"""The lockstep forest reproduces scalar chains bit for bit.

The whole contract of :mod:`repro.mcmc.forest` is RNG-order
equivalence: a forest chain constructed with generator ``g`` must visit
exactly the states that ``MetropolisHastingsChain(model, rng=g)``
visits -- same golden trajectories, same batching invariance, same
bank continuation semantics.  These tests pin that contract for both
the numpy lockstep kernel and (when a C toolchain is present) the
compiled kernel, against the same fixed-seed constants as
``tests/mcmc/test_regression_vectorized.py``.
"""

import numpy as np
import pytest

from repro.core.conditions import FlowConditionSet
from repro.errors import SamplingError
from repro.graph.generators import random_icm
from repro.mcmc._ckernel import load_kernel
from repro.mcmc.chain import ChainSettings, MetropolisHastingsChain
from repro.mcmc.forest import ChainForest, SumTreeForest
from repro.mcmc.sum_tree import SumTree
from repro.service.bank import SampleBank

SEEDS = [999, 17, 4242]

KERNELS = ["numpy"]
if load_kernel() is not None:
    KERNELS.append("compiled")


@pytest.fixture(scope="module")
def model():
    return random_icm(40, 120, rng=7, probability_range=(0.05, 0.9))


@pytest.fixture(params=KERNELS)
def kernel(request):
    return request.param


class TestSumTreeForest:
    def test_stacks_scalar_trees(self):
        rng = np.random.default_rng(3)
        weights = rng.random((4, 11))
        forest = SumTreeForest(weights)
        for row in range(4):
            scalar = SumTree(weights[row])
            assert forest.trees[row].tolist() == scalar.flat
        assert forest.capacity == 16
        assert len(forest) == 11
        np.testing.assert_array_equal(forest.weights(), weights)

    def test_update_matches_scalar_update(self):
        rng = np.random.default_rng(4)
        weights = rng.random((3, 7))
        forest = SumTreeForest(weights)
        scalars = [SumTree(weights[row]) for row in range(3)]
        forest.update([0, 2], [5, 1], [0.25, 0.0])
        scalars[0].update(5, 0.25)
        scalars[2].update(1, 0.0)
        for row, scalar in enumerate(scalars):
            assert forest.trees[row].tolist() == scalar.flat

    def test_update_rejects_duplicate_rows_and_bad_values(self):
        forest = SumTreeForest([[1.0, 2.0], [3.0, 4.0]])
        with pytest.raises(ValueError, match="distinct"):
            forest.update([0, 0], [0, 1], [1.0, 1.0])
        with pytest.raises(ValueError, match="finite"):
            forest.update([0], [0], [float("nan")])
        with pytest.raises(ValueError, match="out of range"):
            forest.update([0], [5], [1.0])

    def test_rejects_bad_weights(self):
        with pytest.raises(ValueError):
            SumTreeForest(np.empty((0, 4)))
        with pytest.raises(ValueError):
            SumTreeForest([[1.0, -0.5]])
        with pytest.raises(ValueError):
            SumTreeForest([1.0, 2.0])

    def test_sample_zero_total_raises(self):
        forest = SumTreeForest([[0.0, 0.0], [1.0, 1.0]])
        with pytest.raises(SamplingError):
            forest.sample(lambda rows: np.full(rows.size, 0.5))

    def test_capacity_one_tree(self):
        forest = SumTreeForest([[2.0], [3.0]])
        np.testing.assert_array_equal(forest.totals, [2.0, 3.0])
        leaves = forest.sample(lambda rows: np.full(rows.size, 0.5))
        np.testing.assert_array_equal(leaves, [0, 0])


class TestGoldenTrajectories:
    """The constants of test_regression_vectorized, via the forest."""

    def test_chain_trajectory(self, model, kernel):
        forest = ChainForest(
            model,
            rngs=[np.random.default_rng(seed) for seed in SEEDS],
            settings=ChainSettings(burn_in=50, thinning=0),
            kernel=kernel,
        )
        forest.run(500)
        assert forest.steps.tolist() == [550, 550, 550]
        expected_active = [
            4, 5, 7, 10, 12, 14, 15, 16, 18, 19, 20, 23, 25, 27, 29, 32, 35,
            36, 37, 38, 40, 41, 42, 49, 50, 51, 55, 56, 57, 58, 60, 64, 67,
            71, 72, 75, 78, 80, 81, 84, 87, 88, 90, 96, 97, 99, 100, 102,
            103, 104, 106, 108, 109, 111, 113, 115, 116, 119,
        ]
        assert np.flatnonzero(forest.state(0)).tolist() == expected_active

    def test_every_chain_matches_its_scalar_twin(self, model, kernel):
        settings = ChainSettings(burn_in=50, thinning=0)
        forest = ChainForest(
            model,
            rngs=[np.random.default_rng(seed) for seed in SEEDS],
            settings=settings,
            kernel=kernel,
        )
        forest.run(500)
        for index, seed in enumerate(SEEDS):
            chain = MetropolisHastingsChain(model, settings=settings, rng=seed)
            chain.advance(500)
            np.testing.assert_array_equal(forest.state(index), chain.state)
            assert forest.steps[index] == chain.steps
            assert forest.accepted_steps[index] == chain.accepted_steps


class TestBatchingInvariance:
    def test_unequal_chunked_budgets_equal_one_run(self, model, kernel):
        settings = ChainSettings(burn_in=0, thinning=0)
        chunked = ChainForest(
            model,
            rngs=[np.random.default_rng(seed) for seed in SEEDS],
            settings=settings,
            kernel=kernel,
        )
        whole = ChainForest(
            model,
            rngs=[np.random.default_rng(seed) for seed in SEEDS],
            settings=settings,
            kernel=kernel,
        )
        rng = np.random.default_rng(5)
        remaining = np.full(len(SEEDS), 600)
        while remaining.any():
            chunk = np.minimum(rng.integers(1, 97, size=len(SEEDS)), remaining)
            chunked.run(chunk)
            remaining -= chunk
        whole.run(600)
        np.testing.assert_array_equal(chunked.states, whole.states)
        np.testing.assert_array_equal(
            chunked.accepted_steps, whole.accepted_steps
        )

    def test_sample_state_matrices_match_scalar_sampling(self, model, kernel):
        settings = ChainSettings(burn_in=20, thinning=3)
        counts = [25, 10, 0]
        forest = ChainForest(
            model,
            rngs=[np.random.default_rng(seed) for seed in SEEDS],
            settings=settings,
            kernel=kernel,
        )
        matrices = forest.sample_state_matrices(counts)
        for index, (seed, count) in enumerate(zip(SEEDS, counts)):
            chain = MetropolisHastingsChain(model, settings=settings, rng=seed)
            expected = chain.sample_state_matrix(count)
            assert matrices[index].shape == expected.shape
            np.testing.assert_array_equal(matrices[index], expected)

    def test_chain_views_step_independently(self, model, kernel):
        settings = ChainSettings(burn_in=10, thinning=0)
        forest = ChainForest(
            model,
            rngs=[np.random.default_rng(seed) for seed in SEEDS],
            settings=settings,
            kernel=kernel,
        )
        view = forest.chains[1]
        view.run(40)
        assert forest.steps.tolist() == [10, 50, 10]
        chain = MetropolisHastingsChain(model, settings=settings, rng=SEEDS[1])
        chain.advance(40)
        np.testing.assert_array_equal(view.state, chain.state)
        assert view.steps == chain.steps
        assert view.accepted_steps == chain.accepted_steps
        assert view.acceptance_rate == chain.acceptance_rate


class TestConditionedDelegation:
    def test_conditioned_forest_matches_scalar_chain(self, model):
        nodes = model.graph.nodes()
        conditions = FlowConditionSet.from_tuples(
            [(nodes[0], nodes[5], True), (nodes[3], nodes[17], False)]
        )
        settings = ChainSettings(burn_in=0, thinning=0)
        forest = ChainForest(
            model,
            rngs=[np.random.default_rng(321), np.random.default_rng(99)],
            conditions=conditions,
            settings=settings,
        )
        assert forest.kernel == "scalar"
        forest.run(200)
        chain = MetropolisHastingsChain(
            model,
            conditions=conditions,
            settings=settings,
            rng=np.random.default_rng(321),
        )
        chain.run(200)
        np.testing.assert_array_equal(forest.state(0), chain.state)
        assert conditions.satisfied(model, forest.state(0))


class TestBankContinuation:
    """A bank grown via lockstep equals one grown via per-chain chains."""

    def test_lockstep_bank_equals_serial_bank(self, model):
        settings = ChainSettings(burn_in=30, thinning=1)
        serial = SampleBank(
            model, settings=settings, rng=42, n_chains=4, executor="serial"
        )
        lockstep = SampleBank(
            model, settings=settings, rng=42, n_chains=4, executor="lockstep"
        )
        # Two growths: the second must *continue* the chains, not re-burn.
        serial.grow(101)
        serial.grow(57)
        lockstep.grow(101)
        lockstep.grow(57)
        np.testing.assert_array_equal(serial.states, lockstep.states)
        assert serial.ess() == lockstep.ess()
        assert serial.acceptance_rate == lockstep.acceptance_rate
        assert serial.snapshot()["chains"] == lockstep.snapshot()["chains"]

    def test_lockstep_conditioned_bank_equals_serial(self, model):
        nodes = model.graph.nodes()
        conditions = FlowConditionSet.from_tuples([(nodes[0], nodes[5], True)])
        settings = ChainSettings(burn_in=30, thinning=1)
        serial = SampleBank(
            model,
            conditions=conditions,
            settings=settings,
            rng=7,
            n_chains=2,
            executor="serial",
        )
        lockstep = SampleBank(
            model,
            conditions=conditions,
            settings=settings,
            rng=7,
            n_chains=2,
            executor="lockstep",
        )
        serial.grow(40)
        lockstep.grow(40)
        np.testing.assert_array_equal(serial.states, lockstep.states)


class TestForestValidation:
    def test_rejects_empty_rngs(self, model):
        with pytest.raises(ValueError, match="at least one chain"):
            ChainForest(model, rngs=[])

    def test_rejects_unknown_kernel(self, model):
        with pytest.raises(ValueError, match="kernel"):
            ChainForest(model, rngs=[0], kernel="cuda")

    def test_rejects_bad_budget_shape(self, model, kernel):
        forest = ChainForest(
            model,
            rngs=[0, 1],
            settings=ChainSettings(burn_in=0, thinning=0),
            kernel=kernel,
        )
        with pytest.raises(ValueError, match="length-2"):
            forest.run([1, 2, 3])
        with pytest.raises(ValueError, match="length 2"):
            forest.sample_state_matrices([1])
        with pytest.raises(ValueError, match="non-negative"):
            forest.sample_state_matrices([-1, 2])

    def test_negative_budgets_clamp_to_zero(self, model, kernel):
        forest = ChainForest(
            model,
            rngs=[0, 1],
            settings=ChainSettings(burn_in=0, thinning=0),
            kernel=kernel,
        )
        accepted = forest.run([-5, 0])
        assert accepted.tolist() == [0, 0]
        assert forest.steps.tolist() == [0, 0]
