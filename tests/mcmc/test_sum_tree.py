"""Unit and property tests for the proposal sum tree."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SamplingError
from repro.mcmc.sum_tree import SumTree


class TestConstruction:
    def test_total_is_sum(self):
        tree = SumTree([1.0, 2.0, 3.0])
        assert tree.total == pytest.approx(6.0)

    def test_single_leaf(self):
        tree = SumTree([0.5])
        assert len(tree) == 1
        assert tree.total == 0.5

    def test_non_power_of_two_sizes(self):
        for size in (3, 5, 6, 7, 9):
            tree = SumTree(list(range(1, size + 1)))
            assert tree.total == pytest.approx(size * (size + 1) / 2)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            SumTree([])

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            SumTree([1.0, -0.5])

    def test_rejects_non_finite(self):
        with pytest.raises(ValueError):
            SumTree([1.0, float("inf")])


class TestUpdate:
    def test_update_changes_total(self):
        tree = SumTree([1.0, 2.0, 3.0])
        tree.update(1, 5.0)
        assert tree.total == pytest.approx(9.0)
        assert tree.weight(1) == 5.0

    def test_update_to_zero(self):
        tree = SumTree([1.0, 2.0])
        tree.update(0, 0.0)
        assert tree.total == pytest.approx(2.0)

    def test_out_of_range_rejected(self):
        tree = SumTree([1.0])
        with pytest.raises(ValueError, match="out of range"):
            tree.update(1, 2.0)

    def test_negative_weight_rejected(self):
        tree = SumTree([1.0])
        with pytest.raises(ValueError):
            tree.update(0, -1.0)

    @given(
        weights=st.lists(
            st.floats(min_value=0.0, max_value=100.0), min_size=1, max_size=40
        ),
        updates=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=39),
                st.floats(min_value=0.0, max_value=100.0),
            ),
            max_size=20,
        ),
    )
    @settings(max_examples=50, deadline=None)
    def test_property_total_tracks_leaves(self, weights, updates):
        tree = SumTree(weights)
        reference = list(weights)
        for index, weight in updates:
            if index >= len(reference):
                continue
            tree.update(index, weight)
            reference[index] = weight
        assert tree.total == pytest.approx(sum(reference), abs=1e-9)
        assert np.allclose(tree.weights(), reference)


class TestSampling:
    def test_zero_total_raises(self):
        tree = SumTree([0.0, 0.0])
        with pytest.raises(SamplingError):
            tree.sample(np.random.default_rng(0))

    def test_never_samples_zero_weight(self):
        tree = SumTree([0.0, 1.0, 0.0])
        rng = np.random.default_rng(0)
        assert all(tree.sample(rng) == 1 for _ in range(100))

    def test_frequencies_proportional_to_weights(self):
        tree = SumTree([1.0, 3.0, 6.0])
        rng = np.random.default_rng(1)
        counts = np.zeros(3)
        n = 30_000
        for _ in range(n):
            counts[tree.sample(rng)] += 1
        assert np.allclose(counts / n, [0.1, 0.3, 0.6], atol=0.02)

    def test_frequencies_after_updates(self):
        tree = SumTree([5.0, 5.0])
        tree.update(0, 1.0)
        tree.update(1, 9.0)
        rng = np.random.default_rng(2)
        n = 20_000
        hits = sum(tree.sample(rng) for _ in range(n))
        assert hits / n == pytest.approx(0.9, abs=0.02)

    @given(seed=st.integers(min_value=0, max_value=100))
    @settings(max_examples=20, deadline=None)
    def test_property_sampled_index_has_positive_weight(self, seed):
        rng = np.random.default_rng(seed)
        weights = rng.random(17)
        weights[rng.integers(0, 17, size=5)] = 0.0
        if weights.sum() == 0.0:
            weights[0] = 1.0
        tree = SumTree(weights)
        for _ in range(20):
            index = tree.sample(rng)
            assert weights[index] > 0.0
