"""Tests for nested Metropolis-Hastings uncertainty estimation."""

import numpy as np
import pytest

from repro.core.beta_icm import BetaICM
from repro.graph.digraph import DiGraph
from repro.mcmc.chain import ChainSettings
from repro.mcmc.nested import (
    beta_moments_from_samples,
    gaussian_edge_sampled_icm,
    nested_flow_distribution,
)

FAST = ChainSettings(burn_in=200, thinning=2)


class TestNestedFlowDistribution:
    def test_shape_and_range(self, small_beta_icm):
        values = nested_flow_distribution(
            small_beta_icm,
            "v0",
            "v1",
            n_models=20,
            samples_per_model=200,
            settings=FAST,
            rng=0,
        )
        assert values.shape == (20,)
        assert np.all(values >= 0.0) and np.all(values <= 1.0)

    def test_tight_betas_give_tight_distribution(self):
        """High pseudo-counts => little edge uncertainty => narrow spread."""
        graph = DiGraph(edges=[("a", "b")])
        tight = BetaICM(graph, [300.0], [100.0])
        loose = BetaICM(graph, [3.0], [1.0])
        tight_values = nested_flow_distribution(
            tight, "a", "b", n_models=30, samples_per_model=400, settings=FAST, rng=1
        )
        loose_values = nested_flow_distribution(
            loose, "a", "b", n_models=30, samples_per_model=400, settings=FAST, rng=1
        )
        assert tight_values.std() < loose_values.std()
        assert abs(tight_values.mean() - 0.75) < 0.05

    def test_single_edge_distribution_tracks_beta(self):
        """For one edge, flow probability == edge probability ~ Beta(a, b)."""
        graph = DiGraph(edges=[("a", "b")])
        model = BetaICM(graph, [4.0], [8.0])
        values = nested_flow_distribution(
            model, "a", "b", n_models=120, samples_per_model=500, settings=FAST, rng=2
        )
        assert values.mean() == pytest.approx(4.0 / 12.0, abs=0.05)

    def test_invalid_model_count(self, small_beta_icm):
        with pytest.raises(ValueError):
            nested_flow_distribution(small_beta_icm, "v0", "v1", n_models=0)


class TestGaussianEdgeSampling:
    def test_draws_clipped_to_unit_interval(self, triangle_graph, rng):
        means = np.array([0.05, 0.5, 0.95])
        stds = np.array([0.3, 0.3, 0.3])
        for _ in range(20):
            model = gaussian_edge_sampled_icm(means, stds, triangle_graph, rng)
            probabilities = model.edge_probabilities
            assert np.all(probabilities >= 0.0) and np.all(probabilities <= 1.0)

    def test_zero_std_reproduces_means(self, triangle_graph, rng):
        means = np.array([0.2, 0.5, 0.8])
        model = gaussian_edge_sampled_icm(means, np.zeros(3), triangle_graph, rng)
        assert np.allclose(model.edge_probabilities, means)

    def test_shape_mismatch_rejected(self, triangle_graph, rng):
        from repro.errors import ModelError

        with pytest.raises(ModelError):
            gaussian_edge_sampled_icm(np.array([0.5]), np.array([0.1]), triangle_graph, rng)

    def test_negative_std_rejected(self, triangle_graph, rng):
        from repro.errors import ModelError

        with pytest.raises(ModelError):
            gaussian_edge_sampled_icm(
                np.full(3, 0.5), np.array([0.1, -0.1, 0.1]), triangle_graph, rng
            )


class TestBetaMoments:
    def test_recovers_known_beta(self):
        rng = np.random.default_rng(0)
        samples = rng.beta(5.0, 15.0, size=50_000)
        alpha, beta = beta_moments_from_samples(samples)
        assert alpha == pytest.approx(5.0, rel=0.1)
        assert beta == pytest.approx(15.0, rel=0.1)

    def test_degenerate_samples_fallback(self):
        alpha, beta = beta_moments_from_samples(np.full(100, 0.3))
        assert alpha > 0.0 and beta > 0.0
        assert alpha / (alpha + beta) == pytest.approx(0.3, abs=1e-6)

    def test_too_few_samples_rejected(self):
        with pytest.raises(ValueError):
            beta_moments_from_samples(np.array([0.5]))
