"""Tests for the MCMC diagnostics."""

import numpy as np
import pytest

from repro.mcmc.diagnostics import autocorrelation, effective_sample_size, geweke_z_score


class TestAutocorrelation:
    def test_lag_zero_is_one(self, rng):
        trace = rng.random(500)
        result = autocorrelation(trace, max_lag=10)
        assert result[0] == 1.0

    def test_iid_trace_decorrelates(self, rng):
        trace = rng.random(5000)
        result = autocorrelation(trace, max_lag=5)
        assert np.all(np.abs(result[1:]) < 0.05)

    def test_perfectly_correlated_trace(self):
        trace = np.arange(100, dtype=float)
        result = autocorrelation(trace, max_lag=1)
        assert result[1] > 0.9

    def test_alternating_trace_negative_lag_one(self):
        trace = np.tile([0.0, 1.0], 100)
        result = autocorrelation(trace, max_lag=1)
        assert result[1] < -0.9

    def test_constant_trace_convention(self):
        result = autocorrelation(np.full(50, 3.0), max_lag=5)
        assert result[0] == 1.0
        assert np.all(result[1:] == 0.0)

    def test_max_lag_clamped(self):
        result = autocorrelation([1.0, 2.0, 3.0], max_lag=10)
        assert result.shape == (3,)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            autocorrelation([], max_lag=1)

    def test_negative_lag_rejected(self):
        with pytest.raises(ValueError):
            autocorrelation([1.0, 2.0], max_lag=-1)


class TestEffectiveSampleSize:
    def test_iid_ess_near_n(self, rng):
        trace = rng.random(2000)
        ess = effective_sample_size(trace)
        assert ess > 1500

    def test_sticky_chain_low_ess(self, rng):
        # AR(1) with high persistence
        n = 2000
        trace = np.zeros(n)
        for t in range(1, n):
            trace[t] = 0.98 * trace[t - 1] + rng.normal()
        ess = effective_sample_size(trace)
        assert ess < n / 10

    def test_bounds(self, rng):
        trace = rng.random(100)
        ess = effective_sample_size(trace)
        assert 1.0 <= ess <= 100.0

    def test_constant_trace(self):
        assert effective_sample_size(np.full(50, 2.0)) == 50.0

    def test_tiny_trace(self):
        assert effective_sample_size([1.0]) == 1.0


class TestGeweke:
    def test_stationary_trace_small_z(self, rng):
        trace = rng.normal(size=5000)
        assert abs(geweke_z_score(trace)) < 3.0

    def test_drifting_trace_large_z(self, rng):
        trace = np.linspace(0.0, 10.0, 1000) + rng.normal(scale=0.1, size=1000)
        assert abs(geweke_z_score(trace)) > 5.0

    def test_short_trace_rejected(self):
        with pytest.raises(ValueError):
            geweke_z_score([1.0, 2.0, 3.0])

    def test_overlapping_fractions_rejected(self, rng):
        with pytest.raises(ValueError):
            geweke_z_score(rng.random(100), first_fraction=0.6, last_fraction=0.6)

    def test_constant_equal_segments(self):
        assert geweke_z_score(np.full(100, 1.5)) == 0.0


class TestDiagnosticsEdgeCases:
    """Edge cases the service's ESS-targeted growth loop leans on."""

    def test_constant_trace_ess_is_n_for_any_length(self):
        for n in (2, 3, 17, 256):
            assert effective_sample_size(np.zeros(n)) == float(n)

    def test_constant_trace_autocorrelation_any_max_lag(self):
        result = autocorrelation(np.full(4, 7.0), max_lag=100)
        assert result.shape == (4,)
        assert result[0] == 1.0
        assert np.all(result[1:] == 0.0)

    def test_trace_shorter_than_max_lag_clamps(self, rng):
        trace = rng.random(5)
        result = autocorrelation(trace, max_lag=50)
        assert result.shape == (5,)
        np.testing.assert_allclose(result, autocorrelation(trace, max_lag=4))

    def test_ess_of_two_samples(self, rng):
        ess = effective_sample_size(rng.random(2))
        assert 1.0 <= ess <= 2.0

    def test_geweke_two_sample_segments(self, rng):
        # at the minimum length of 10, both segments clamp to >= 2 samples
        trace = rng.random(10)
        z = geweke_z_score(trace)
        assert np.isfinite(z)

    def test_geweke_minimum_length_boundary(self, rng):
        with pytest.raises(ValueError, match=">= 10"):
            geweke_z_score(rng.random(9))
        assert np.isfinite(geweke_z_score(rng.random(10)))

    def test_geweke_constant_but_different_segments(self):
        trace = np.concatenate([np.zeros(5), np.ones(5)])
        assert geweke_z_score(trace) == float("inf")

    def test_ess_monotone_under_thinning(self, rng):
        # AR(1) with strong persistence: discarding samples cannot add
        # information, but each kept sample becomes more informative.
        n = 4000
        trace = np.zeros(n)
        for t in range(1, n):
            trace[t] = 0.95 * trace[t - 1] + rng.normal()
        full_ess = effective_sample_size(trace)
        previous = full_ess
        for step in (2, 4, 8):
            thinned = trace[::step]
            thinned_ess = effective_sample_size(thinned)
            # absolute ESS shrinks (or stays flat) as we discard samples...
            assert thinned_ess <= previous * 1.1
            # ...while per-sample efficiency improves
            assert thinned_ess / thinned.size >= full_ess / n
            previous = thinned_ess

    def test_single_sample_chain(self):
        assert effective_sample_size([3.5]) == 1.0
        result = autocorrelation([3.5], max_lag=10)
        assert result.shape == (1,)
        assert result[0] == 1.0
        with pytest.raises(ValueError, match=">= 10"):
            geweke_z_score([3.5])

    def test_empty_chain(self):
        assert effective_sample_size([]) == 0.0
        with pytest.raises(ValueError, match="non-empty"):
            autocorrelation([], max_lag=3)

    def test_geweke_constant_and_equal_segments_is_zero(self):
        assert geweke_z_score(np.full(20, 2.5)) == 0.0

    def test_ess_grows_monotonically_with_iid_samples(self, rng):
        # the telemetry ESS trajectory relies on this: for well-mixed
        # chains, more samples never report less total information
        samples = rng.normal(size=2000)
        checkpoints = [effective_sample_size(samples[:n]) for n in (100, 400, 1000, 2000)]
        assert all(b > a for a, b in zip(checkpoints, checkpoints[1:]))

    def test_ess_trajectory_grows_on_a_real_chain(self, rng):
        # even a persistent AR(1) chain accumulates information as it runs
        n = 3000
        trace = np.zeros(n)
        for t in range(1, n):
            trace[t] = 0.9 * trace[t - 1] + rng.normal()
        early = effective_sample_size(trace[:500])
        late = effective_sample_size(trace)
        assert late > early
