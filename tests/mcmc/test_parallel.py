"""Multi-chain flow estimation: determinism, merging, and diagnostics."""

import numpy as np
import pytest

from repro.core.conditions import FlowConditionSet
from repro.errors import GraphError
from repro.graph.generators import random_icm
from repro.mcmc.chain import ChainSettings
from repro.mcmc.flow_estimator import estimate_flow_probability
from repro.mcmc.parallel import ParallelFlowEstimator, _split_evenly


@pytest.fixture(scope="module")
def model():
    return random_icm(40, 120, rng=7, probability_range=(0.05, 0.9))


@pytest.fixture
def settings():
    return ChainSettings(burn_in=30, thinning=1)


def _estimator(model, settings, executor, n_chains=3, conditions=None):
    return ParallelFlowEstimator(
        model,
        n_chains=n_chains,
        conditions=conditions,
        settings=settings,
        rng=np.random.default_rng(42),
        executor=executor,
    )


class TestSplitEvenly:
    def test_exact_division(self):
        assert _split_evenly(12, 3) == [4, 4, 4]

    def test_remainder_spread_over_first_chunks(self):
        assert _split_evenly(10, 4) == [3, 3, 2, 2]
        assert sum(_split_evenly(997, 8)) == 997


class TestExecutorEquivalence:
    def test_all_modes_produce_identical_numbers(self, model, settings):
        nodes = model.graph.nodes()
        pairs = [(nodes[0], nodes[5]), (nodes[0], nodes[8])]
        results = {}
        for executor in ("serial", "thread", "process", "lockstep"):
            result = _estimator(model, settings, executor).estimate_flow_probabilities(
                pairs, n_samples=60
            )
            results[executor] = (
                {pair: result.estimates[pair].probability for pair in pairs},
                {pair: result.per_chain[pair].tolist() for pair in pairs},
                result.samples_per_chain,
            )
        assert results["serial"] == results["thread"]
        assert results["serial"] == results["process"]
        assert results["serial"] == results["lockstep"]

    def test_lockstep_matches_serial_when_conditioned(self, model, settings):
        nodes = model.graph.nodes()
        conditions = FlowConditionSet.from_tuples([(nodes[0], nodes[5], True)])
        pair = (nodes[0], nodes[8])
        results = {}
        for executor in ("serial", "lockstep"):
            result = _estimator(
                model, settings, executor, conditions=conditions
            ).estimate_flow_probabilities([pair], n_samples=45)
            results[executor] = (
                result.estimates[pair].probability,
                result.per_chain[pair].tolist(),
                result.ess_per_chain,
                result.geweke_per_chain,
            )
        assert results["serial"] == results["lockstep"]

    def test_lockstep_impact_matches_serial(self, model, settings):
        source = model.graph.nodes()[0]
        serial = _estimator(model, settings, "serial").estimate_impact_distribution(
            source, n_samples=60
        )
        lockstep = _estimator(
            model, settings, "lockstep"
        ).estimate_impact_distribution(source, n_samples=60)
        assert serial == lockstep

    def test_seeded_runs_are_reproducible(self, model, settings):
        nodes = model.graph.nodes()
        pair = (nodes[0], nodes[8])
        first = _estimator(model, settings, "serial").estimate_flow_probability(
            *pair, n_samples=45
        )
        second = _estimator(model, settings, "serial").estimate_flow_probability(
            *pair, n_samples=45
        )
        assert first.probability == second.probability
        assert first.n_samples == second.n_samples == 45


class TestMerging:
    def test_merged_estimate_is_hit_weighted_mean(self, model, settings):
        nodes = model.graph.nodes()
        pair = (nodes[0], nodes[8])
        result = _estimator(model, settings, "serial").estimate_flow_probabilities(
            [pair], n_samples=61
        )
        assert result.n_chains == 3
        assert result.samples_per_chain == (21, 20, 20)
        per_chain = result.per_chain[pair]
        hits = sum(
            mean * samples
            for mean, samples in zip(per_chain, result.samples_per_chain)
        )
        assert result.estimates[pair].probability == pytest.approx(hits / 61)

    def test_single_chain_matches_sequential_estimator(self, model, settings):
        nodes = model.graph.nodes()
        pair = (nodes[0], nodes[8])
        parallel = ParallelFlowEstimator(
            model,
            n_chains=1,
            settings=settings,
            rng=np.random.default_rng(9),
            executor="serial",
        )
        merged = parallel.estimate_flow_probability(*pair, n_samples=50)
        seed_seq = np.random.default_rng(9).bit_generator.seed_seq.spawn(1)[0]
        sequential = estimate_flow_probability(
            model,
            *pair,
            n_samples=50,
            settings=settings,
            rng=np.random.default_rng(seed_seq),
        )
        assert merged.probability == sequential.probability

    def test_between_chain_variance(self, model, settings):
        nodes = model.graph.nodes()
        pair = (nodes[0], nodes[8])
        result = _estimator(model, settings, "serial").estimate_flow_probabilities(
            [pair], n_samples=90
        )
        expected = float(np.var(result.per_chain[pair], ddof=1))
        assert result.between_chain_variance(pair) == expected
        single = ParallelFlowEstimator(
            model,
            n_chains=1,
            settings=settings,
            rng=np.random.default_rng(3),
            executor="serial",
        ).estimate_flow_probabilities([pair], n_samples=30)
        assert single.between_chain_variance(pair) == 0.0

    def test_conditioned_estimates(self, model, settings):
        nodes = model.graph.nodes()
        conditions = FlowConditionSet.from_tuples([(nodes[0], nodes[5], True)])
        result = _estimator(
            model, settings, "serial", conditions=conditions
        ).estimate_flow_probabilities([(nodes[0], nodes[8])], n_samples=45)
        estimate = result.estimates[(nodes[0], nodes[8])]
        assert estimate.n_samples == 45
        assert 0.0 <= estimate.probability <= 1.0


class TestImpactDistribution:
    def test_merged_counts_normalise(self, model, settings):
        distribution = _estimator(
            model, settings, "serial"
        ).estimate_impact_distribution(model.graph.nodes()[2], n_samples=90)
        assert sum(distribution.values()) == pytest.approx(1.0)
        assert all(impact >= 0 for impact in distribution)
        assert list(distribution) == sorted(distribution)

    def test_matches_thread_mode(self, model, settings):
        source = model.graph.nodes()[2]
        serial = _estimator(model, settings, "serial").estimate_impact_distribution(
            source, n_samples=60
        )
        threaded = _estimator(model, settings, "thread").estimate_impact_distribution(
            source, n_samples=60
        )
        assert serial == threaded

    def test_rejects_conditions(self, model, settings):
        nodes = model.graph.nodes()
        conditions = FlowConditionSet.from_tuples([(nodes[0], nodes[5], True)])
        estimator = _estimator(model, settings, "serial", conditions=conditions)
        with pytest.raises(ValueError, match="unconditional"):
            estimator.estimate_impact_distribution(nodes[2], n_samples=30)


class TestValidation:
    def test_rejects_bad_executor(self, model):
        with pytest.raises(ValueError, match="executor"):
            ParallelFlowEstimator(model, executor="cluster")

    def test_rejects_non_positive_chains(self, model):
        with pytest.raises(ValueError, match="n_chains"):
            ParallelFlowEstimator(model, n_chains=0)

    def test_rejects_budget_below_chain_count(self, model, settings):
        nodes = model.graph.nodes()
        estimator = _estimator(model, settings, "serial", n_chains=3)
        with pytest.raises(ValueError, match="n_samples"):
            estimator.estimate_flow_probability(nodes[0], nodes[8], n_samples=2)
        with pytest.raises(ValueError, match="n_samples"):
            estimator.estimate_impact_distribution(nodes[2], n_samples=2)

    def test_rejects_empty_pairs(self, model, settings):
        estimator = _estimator(model, settings, "serial")
        with pytest.raises(ValueError, match="pairs"):
            estimator.estimate_flow_probabilities([], n_samples=30)

    def test_rejects_unknown_nodes(self, model, settings):
        estimator = _estimator(model, settings, "serial")
        with pytest.raises(GraphError, match="unknown node"):
            estimator.estimate_flow_probability("v0", "nope", n_samples=30)


class TestPerChainDiagnostics:
    def test_result_carries_ess_and_geweke_per_chain(self, model, settings):
        nodes = model.graph.nodes()
        result = _estimator(model, settings, "serial").estimate_flow_probabilities(
            [(nodes[0], nodes[8])], n_samples=60
        )
        assert len(result.ess_per_chain) == result.n_chains
        assert len(result.geweke_per_chain) == result.n_chains
        for ess, samples in zip(result.ess_per_chain, result.samples_per_chain):
            assert 1.0 <= ess <= samples
        assert all(np.isfinite(z) or np.isnan(z) for z in result.geweke_per_chain)
        assert result.total_ess == pytest.approx(sum(result.ess_per_chain))

    def test_diagnostics_identical_across_executors(self, model, settings):
        nodes = model.graph.nodes()
        pair = (nodes[0], nodes[8])
        outcomes = {
            executor: _estimator(model, settings, executor).estimate_flow_probabilities(
                [pair], n_samples=45
            )
            for executor in ("serial", "thread", "process")
        }
        assert (
            outcomes["serial"].ess_per_chain
            == outcomes["thread"].ess_per_chain
            == outcomes["process"].ess_per_chain
        )
        assert (
            outcomes["serial"].geweke_per_chain
            == outcomes["thread"].geweke_per_chain
            == outcomes["process"].geweke_per_chain
        )

    def test_short_chains_get_nan_geweke(self, model, settings):
        nodes = model.graph.nodes()
        result = _estimator(model, settings, "serial").estimate_flow_probabilities(
            [(nodes[0], nodes[8])], n_samples=9  # 3 samples per chain, < 10
        )
        assert all(np.isnan(z) for z in result.geweke_per_chain)
