"""Flow estimators vs exact answers on small graphs."""

import numpy as np
import pytest

from repro.core.beta_icm import BetaICM
from repro.core.conditions import FlowConditionSet
from repro.core.exact import (
    brute_force_community_distribution,
    brute_force_conditional_flow_probability,
    brute_force_flow_probability,
)
from repro.core.icm import ICM
from repro.graph.digraph import DiGraph
from repro.mcmc.chain import ChainSettings
from repro.mcmc.flow_estimator import (
    as_point_model,
    estimate_community_flow,
    estimate_flow_probabilities,
    estimate_flow_probability,
    estimate_impact_distribution,
    estimate_joint_flow_probability,
)

FAST = ChainSettings(burn_in=300, thinning=4)


class TestAsPointModel:
    def test_icm_passthrough(self, triangle_icm):
        assert as_point_model(triangle_icm) is triangle_icm

    def test_beta_collapse(self, small_beta_icm):
        point = as_point_model(small_beta_icm)
        assert isinstance(point, ICM)
        assert np.allclose(point.edge_probabilities, small_beta_icm.means())

    def test_rejects_other_types(self):
        with pytest.raises(TypeError):
            as_point_model("not a model")


class TestMarginalFlow:
    def test_matches_brute_force(self, small_random_icm):
        exact = brute_force_flow_probability(small_random_icm, "v0", "v2")
        estimate = estimate_flow_probability(
            small_random_icm, "v0", "v2", n_samples=6000, settings=FAST, rng=0
        )
        assert estimate.probability == pytest.approx(exact, abs=0.03)

    def test_self_flow_is_one(self, triangle_icm):
        estimate = estimate_flow_probability(
            triangle_icm, "v1", "v1", n_samples=200, settings=FAST, rng=1
        )
        assert estimate.probability == 1.0

    def test_unreachable_is_zero(self, triangle_icm):
        estimate = estimate_flow_probability(
            triangle_icm, "v3", "v1", n_samples=200, settings=FAST, rng=2
        )
        assert estimate.probability == 0.0

    def test_beta_icm_input(self, small_beta_icm):
        exact = brute_force_flow_probability(
            small_beta_icm.expected_icm(), "v0", "v2"
        )
        estimate = estimate_flow_probability(
            small_beta_icm, "v0", "v2", n_samples=6000, settings=FAST, rng=3
        )
        assert estimate.probability == pytest.approx(exact, abs=0.03)

    def test_std_error_shrinks_with_samples(self, triangle_icm):
        small = estimate_flow_probability(
            triangle_icm, "v1", "v3", n_samples=100, settings=FAST, rng=4
        )
        large = estimate_flow_probability(
            triangle_icm, "v1", "v3", n_samples=10_000, settings=FAST, rng=4
        )
        assert large.std_error < small.std_error

    def test_invalid_sample_count(self, triangle_icm):
        with pytest.raises(ValueError):
            estimate_flow_probability(triangle_icm, "v1", "v3", n_samples=0)


class TestBatchedFlow:
    def test_all_pairs_estimated(self, small_random_icm):
        pairs = [("v0", "v1"), ("v0", "v2"), ("v3", "v4")]
        estimates = estimate_flow_probabilities(
            small_random_icm, pairs, n_samples=3000, settings=FAST, rng=5
        )
        assert set(estimates) == set(pairs)
        for pair in pairs:
            exact = brute_force_flow_probability(small_random_icm, *pair)
            assert estimates[pair].probability == pytest.approx(exact, abs=0.05)

    def test_duplicate_pairs_deduplicated(self, triangle_icm):
        estimates = estimate_flow_probabilities(
            triangle_icm,
            [("v1", "v3"), ("v1", "v3")],
            n_samples=100,
            settings=FAST,
            rng=6,
        )
        assert len(estimates) == 1


class TestConditionalFlow:
    def test_matches_brute_force(self, small_random_icm):
        conditions = FlowConditionSet.from_tuples([("v0", "v3", True)])
        try:
            exact = brute_force_conditional_flow_probability(
                small_random_icm, "v0", "v2", conditions
            )
        except Exception:
            pytest.skip("conditions infeasible on this fixture draw")
        estimate = estimate_flow_probability(
            small_random_icm,
            "v0",
            "v2",
            conditions=conditions,
            n_samples=6000,
            settings=FAST,
            rng=7,
        )
        assert estimate.probability == pytest.approx(exact, abs=0.04)

    def test_chain_example(self, chain_icm):
        conditions = FlowConditionSet.from_tuples([("a", "b", True)])
        estimate = estimate_flow_probability(
            chain_icm,
            "a",
            "c",
            conditions=conditions,
            n_samples=8000,
            settings=FAST,
            rng=8,
        )
        assert estimate.probability == pytest.approx(0.5, abs=0.03)


class TestJointFlow:
    def test_joint_of_independent_paths(self):
        # two disjoint edges: joint flow probability is the product.
        graph = DiGraph(edges=[("a", "b"), ("c", "d")])
        model = ICM(graph, [0.6, 0.3])
        estimate = estimate_joint_flow_probability(
            model,
            [("a", "b"), ("c", "d")],
            n_samples=10_000,
            settings=FAST,
            rng=9,
        )
        assert estimate.probability == pytest.approx(0.18, abs=0.02)

    def test_joint_no_larger_than_marginal(self, small_random_icm):
        joint = estimate_joint_flow_probability(
            small_random_icm,
            [("v0", "v1"), ("v0", "v2")],
            n_samples=4000,
            settings=FAST,
            rng=10,
        )
        marginal = estimate_flow_probability(
            small_random_icm, "v0", "v1", n_samples=4000, settings=FAST, rng=10
        )
        assert joint.probability <= marginal.probability + 0.03

    def test_empty_flows_rejected(self, triangle_icm):
        with pytest.raises(ValueError):
            estimate_joint_flow_probability(triangle_icm, [])


class TestCommunityAndImpact:
    def test_community_flow_matches_marginals(self, triangle_icm):
        community = estimate_community_flow(
            triangle_icm, "v1", ["v2", "v3"], n_samples=6000, settings=FAST, rng=11
        )
        for sink in ("v2", "v3"):
            exact = brute_force_flow_probability(triangle_icm, "v1", sink)
            assert community[sink].probability == pytest.approx(exact, abs=0.03)

    def test_impact_distribution_matches_enumeration(self, triangle_icm):
        exact = brute_force_community_distribution(triangle_icm, "v1")
        estimated = estimate_impact_distribution(
            triangle_icm, "v1", n_samples=12_000, settings=FAST, rng=12
        )
        assert sum(estimated.values()) == pytest.approx(1.0)
        for impact, probability in exact.items():
            assert estimated.get(impact, 0.0) == pytest.approx(
                probability, abs=0.03
            )


class TestConditionalByBayes:
    """The paper's footnote-2 estimator: conditional flow from the
    unconstrained chain via Pr[A AND C] / Pr[C]."""

    def test_matches_constrained_chain_on_chain_example(self, chain_icm):
        from repro.mcmc.flow_estimator import estimate_conditional_flow_by_bayes

        conditions = FlowConditionSet.from_tuples([("a", "b", True)])
        estimate = estimate_conditional_flow_by_bayes(
            chain_icm, "a", "c", conditions, n_samples=12_000, settings=FAST, rng=20
        )
        assert estimate.probability == pytest.approx(0.5, abs=0.04)
        # n_samples reports the number of *useful* (condition-satisfying)
        # samples, which is the estimator's real sample size
        assert estimate.n_samples < 12_000

    def test_matches_brute_force(self, small_random_icm):
        from repro.core.exact import brute_force_conditional_flow_probability
        from repro.mcmc.flow_estimator import estimate_conditional_flow_by_bayes

        conditions = FlowConditionSet.from_tuples([("v0", "v3", True)])
        try:
            exact = brute_force_conditional_flow_probability(
                small_random_icm, "v0", "v2", conditions
            )
        except Exception:
            pytest.skip("conditions infeasible on this fixture draw")
        estimate = estimate_conditional_flow_by_bayes(
            small_random_icm,
            "v0",
            "v2",
            conditions,
            n_samples=15_000,
            settings=FAST,
            rng=21,
        )
        assert estimate.probability == pytest.approx(exact, abs=0.05)

    def test_impossible_condition_raises(self, triangle_icm):
        from repro.errors import InfeasibleConditionsError
        from repro.mcmc.flow_estimator import estimate_conditional_flow_by_bayes

        # v3 can never reach v1: the conditioning event never occurs
        conditions = FlowConditionSet.from_tuples([("v3", "v1", True)])
        with pytest.raises(InfeasibleConditionsError, match="near"):
            estimate_conditional_flow_by_bayes(
                triangle_icm, "v1", "v2", conditions, n_samples=300, settings=FAST, rng=22
            )

    def test_invalid_samples(self, triangle_icm):
        from repro.mcmc.flow_estimator import estimate_conditional_flow_by_bayes

        conditions = FlowConditionSet.from_tuples([("v1", "v2", True)])
        with pytest.raises(ValueError):
            estimate_conditional_flow_by_bayes(
                triangle_icm, "v1", "v3", conditions, n_samples=0
            )


class TestPathLikelihood:
    """Flow-dependent path likelihood (the intro's fourth query type)."""

    def test_unconditional_is_product_of_edge_probabilities(self, chain_icm):
        from repro.mcmc.flow_estimator import estimate_path_likelihood

        estimate = estimate_path_likelihood(
            chain_icm,
            ["a", "b", "c"],
            given_flow=False,
            n_samples=8000,
            settings=FAST,
            rng=30,
        )
        assert estimate.probability == pytest.approx(0.25, abs=0.02)

    def test_given_flow_on_only_route_is_certain(self, chain_icm):
        from repro.mcmc.flow_estimator import estimate_path_likelihood

        # a->b->c is the only route, so given a;c it must have been taken
        estimate = estimate_path_likelihood(
            chain_icm, ["a", "b", "c"], n_samples=2000, settings=FAST, rng=31
        )
        assert estimate.probability == 1.0

    def test_competing_routes_ranked(self, triangle_icm):
        from repro.mcmc.flow_estimator import estimate_path_likelihood

        # routes to v3: direct (p=0.25) vs via v2 (0.5 * 0.8 = 0.4)
        direct = estimate_path_likelihood(
            triangle_icm, ["v1", "v3"], n_samples=8000, settings=FAST, rng=32
        )
        via_v2 = estimate_path_likelihood(
            triangle_icm,
            ["v1", "v2", "v3"],
            n_samples=8000,
            settings=FAST,
            rng=32,
        )
        assert via_v2.probability > direct.probability
        # exact conditionals: P(path AND flow)/P(flow); flow prob = 0.55
        assert direct.probability == pytest.approx(0.25 / 0.55, abs=0.04)
        assert via_v2.probability == pytest.approx(0.4 / 0.55, abs=0.04)

    def test_non_edge_in_path_rejected(self, chain_icm):
        from repro.errors import GraphError
        from repro.mcmc.flow_estimator import estimate_path_likelihood

        with pytest.raises(GraphError):
            estimate_path_likelihood(chain_icm, ["a", "c"])

    def test_short_path_rejected(self, chain_icm):
        from repro.mcmc.flow_estimator import estimate_path_likelihood

        with pytest.raises(ValueError):
            estimate_path_likelihood(chain_icm, ["a"])
