"""Shared fixtures: small graphs and models with known exact answers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.beta_icm import BetaICM
from repro.core.icm import ICM
from repro.graph.digraph import DiGraph


@pytest.fixture
def rng():
    """A fresh, deterministic generator per test."""
    return np.random.default_rng(1234)


@pytest.fixture
def triangle_graph():
    """The paper's worked example: v1 -> v2, v1 -> v3, v2 -> v3."""
    return DiGraph(edges=[("v1", "v2"), ("v1", "v3"), ("v2", "v3")])


@pytest.fixture
def triangle_icm(triangle_graph):
    """Triangle with p12=0.5, p13=0.25, p23=0.8 -- Equation (1) applies."""
    return ICM(
        triangle_graph,
        {("v1", "v2"): 0.5, ("v1", "v3"): 0.25, ("v2", "v3"): 0.8},
    )


@pytest.fixture
def cyclic_icm():
    """The paper's cyclic variant: triangle plus the arc (v3, v2)."""
    graph = DiGraph(
        edges=[("v1", "v2"), ("v1", "v3"), ("v2", "v3"), ("v3", "v2")]
    )
    return ICM(
        graph,
        {
            ("v1", "v2"): 0.5,
            ("v1", "v3"): 0.25,
            ("v2", "v3"): 0.8,
            ("v3", "v2"): 0.6,
        },
    )


@pytest.fixture
def chain_icm():
    """a -> b -> c with p=0.5 each: Pr[a;c] = 0.25 exactly."""
    graph = DiGraph(edges=[("a", "b"), ("b", "c")])
    return ICM(graph, {("a", "b"): 0.5, ("b", "c"): 0.5})


@pytest.fixture
def small_random_icm(rng):
    """A random 7-node / 14-edge ICM, small enough to brute force."""
    from repro.graph.generators import random_icm

    return random_icm(7, 14, rng=rng, probability_range=(0.05, 0.95))


@pytest.fixture
def small_beta_icm(rng):
    """A random 7-node / 14-edge betaICM as the paper's generator builds."""
    from repro.graph.generators import random_beta_icm

    return random_beta_icm(7, 14, rng=rng)
