"""The tutorial's code blocks must run, in order, against the live API.

Executes every ```python block in docs/tutorial.md in one shared
namespace — documentation that stops compiling fails the suite.
"""

import io
import re
from contextlib import redirect_stdout
from pathlib import Path

TUTORIAL = Path(__file__).resolve().parents[1] / "docs" / "tutorial.md"


def test_tutorial_blocks_execute_in_order():
    text = TUTORIAL.read_text()
    blocks = re.findall(r"```python\n(.*?)```", text, re.S)
    assert len(blocks) >= 8, "tutorial shrank unexpectedly"
    namespace = {}
    sink = io.StringIO()
    with redirect_stdout(sink):
        for index, block in enumerate(blocks):
            exec(  # noqa: S102 - executing our own documentation
                compile(block, f"<tutorial block {index}>", "exec"), namespace
            )
    # the quickstart block printed a probability
    assert "0." in sink.getvalue()
