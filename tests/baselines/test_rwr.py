"""Tests for random walk with restart."""

import numpy as np
import pytest

from repro.baselines.rwr import rwr_flow_estimates, rwr_scores
from repro.core.icm import ICM
from repro.errors import ModelError
from repro.graph.digraph import DiGraph


@pytest.fixture
def line_model():
    graph = DiGraph(edges=[("a", "b"), ("b", "c")])
    return ICM(graph, [0.5, 0.5])


class TestScores:
    def test_scores_form_distribution(self, line_model):
        scores = rwr_scores(line_model, "a")
        assert sum(scores.values()) == pytest.approx(1.0)
        assert all(value >= 0.0 for value in scores.values())

    def test_source_has_largest_score(self, line_model):
        scores = rwr_scores(line_model, "a")
        assert scores["a"] == max(scores.values())

    def test_distance_decay(self, line_model):
        scores = rwr_scores(line_model, "a")
        assert scores["a"] > scores["b"] > scores["c"]

    def test_unreachable_nodes_score_zero(self):
        graph = DiGraph(edges=[("a", "b"), ("c", "d")])
        model = ICM(graph, [0.5, 0.5])
        scores = rwr_scores(model, "a")
        assert scores["c"] == 0.0
        assert scores["d"] == 0.0

    def test_restart_one_concentrates_on_source(self, line_model):
        scores = rwr_scores(line_model, "a", restart=1.0)
        assert scores["a"] == pytest.approx(1.0)

    def test_weights_influence_split(self):
        graph = DiGraph(edges=[("s", "a"), ("s", "b")])
        model = ICM(graph, [0.9, 0.1])
        scores = rwr_scores(model, "s")
        assert scores["a"] > scores["b"]

    def test_invalid_restart(self, line_model):
        with pytest.raises(ModelError):
            rwr_scores(line_model, "a", restart=0.0)
        with pytest.raises(ModelError):
            rwr_scores(line_model, "a", restart=1.5)

    def test_cycle_converges(self):
        graph = DiGraph(edges=[("a", "b"), ("b", "a")])
        model = ICM(graph, [0.8, 0.8])
        scores = rwr_scores(model, "a")
        assert sum(scores.values()) == pytest.approx(1.0)


class TestFlowEstimates:
    def test_source_normalisation_bounded(self, line_model):
        estimates = rwr_flow_estimates(line_model, "a", normalise="source")
        assert all(0.0 <= value <= 1.0 for value in estimates.values())
        assert estimates["a"] == 1.0

    def test_max_normalisation(self, line_model):
        estimates = rwr_flow_estimates(line_model, "a", normalise="max")
        non_source = {k: v for k, v in estimates.items() if k != "a"}
        assert max(non_source.values()) == pytest.approx(1.0)

    def test_none_returns_raw(self, line_model):
        estimates = rwr_flow_estimates(line_model, "a", normalise="none")
        assert sum(estimates.values()) == pytest.approx(1.0)

    def test_unknown_normalisation_rejected(self, line_model):
        with pytest.raises(ValueError):
            rwr_flow_estimates(line_model, "a", normalise="banana")

    def test_rwr_is_not_calibrated(self):
        """The reason the paper rejects RWR: scores != flow probabilities."""
        from repro.core.exact import exact_flow_probability

        graph = DiGraph(edges=[("a", "b"), ("b", "c"), ("a", "c")])
        model = ICM(graph, [0.9, 0.9, 0.9])
        estimates = rwr_flow_estimates(model, "a")
        truth = exact_flow_probability(model, "a", "c")
        assert abs(estimates["c"] - truth) > 0.1
