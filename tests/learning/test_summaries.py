"""Unit tests for evidence summaries (the paper's Table I machinery)."""

import numpy as np
import pytest

from repro.errors import EvidenceError
from repro.graph.digraph import DiGraph
from repro.learning.evidence import ActivationTrace, UnattributedEvidence
from repro.learning.summaries import (
    ParentRule,
    SinkSummary,
    SummaryRow,
    build_sink_summary,
)


@pytest.fixture
def table1_summary():
    """The paper's Table I: sink k with incident nodes A, B, C."""
    return SinkSummary.from_counts(
        "k",
        ["A", "B", "C"],
        [
            ({"A", "B"}, 5, 1),
            ({"B", "C"}, 50, 15),
            ({"A", "C"}, 10, 2),
        ],
    )


class TestSummaryRow:
    def test_leaks_bounded_by_count(self):
        with pytest.raises(EvidenceError, match="leaks"):
            SummaryRow(frozenset({"A"}), 3, 4)

    def test_empty_characteristic_rejected(self):
        with pytest.raises(EvidenceError, match="at least one parent"):
            SummaryRow(frozenset(), 1, 0)

    def test_unambiguous_flag(self):
        assert SummaryRow(frozenset({"A"}), 1, 0).is_unambiguous
        assert not SummaryRow(frozenset({"A", "B"}), 1, 0).is_unambiguous


class TestSinkSummary:
    def test_table1_counts(self, table1_summary):
        assert table1_summary.n_characteristics == 3
        assert table1_summary.n_observations == 65

    def test_duplicate_characteristics_merge(self):
        summary = SinkSummary.from_counts(
            "k", ["A", "B"], [({"A"}, 3, 1), ({"A"}, 2, 1)]
        )
        assert summary.n_characteristics == 1
        row = summary.rows[0]
        assert row.count == 5
        assert row.leaks == 2

    def test_foreign_parent_rejected(self):
        with pytest.raises(EvidenceError, match="non-parents"):
            SinkSummary.from_counts("k", ["A"], [({"B"}, 1, 0)])

    def test_duplicate_parents_rejected(self):
        with pytest.raises(EvidenceError, match="distinct"):
            SinkSummary("k", ["A", "A"])

    def test_observe_accumulates(self):
        summary = SinkSummary("k", ["A", "B"])
        summary.observe(frozenset({"A"}), activated=True)
        summary.observe(frozenset({"A"}), activated=False)
        assert summary.rows[0].count == 2
        assert summary.rows[0].leaks == 1

    def test_partition_rows(self, table1_summary):
        assert table1_summary.unambiguous_rows() == []
        assert len(table1_summary.ambiguous_rows()) == 3

    def test_parent_index(self, table1_summary):
        assert table1_summary.parent_index("B") == 1
        with pytest.raises(EvidenceError):
            table1_summary.parent_index("Z")


class TestPriorCounts:
    def test_unambiguous_rows_feed_prior(self):
        summary = SinkSummary.from_counts(
            "k",
            ["A", "B"],
            [({"A"}, 10, 4), ({"A", "B"}, 5, 3)],
        )
        alphas, betas = summary.prior_counts()
        assert alphas.tolist() == [5.0, 1.0]  # 1 + 4 leaks
        assert betas.tolist() == [7.0, 1.0]  # 1 + 6 non-leaks

    def test_uniform_when_all_ambiguous(self, table1_summary):
        alphas, betas = table1_summary.prior_counts()
        assert np.all(alphas == 1.0)
        assert np.all(betas == 1.0)


class TestMatrices:
    def test_characteristic_matrix(self, table1_summary):
        matrix = table1_summary.characteristic_matrix()
        assert matrix.shape == (3, 3)
        rows = table1_summary.rows
        for r, row in enumerate(rows):
            for j, parent in enumerate(table1_summary.parents):
                assert matrix[r, j] == (parent in row.characteristic)

    def test_counts_and_leaks_aligned(self, table1_summary):
        counts, leaks = table1_summary.counts_and_leaks()
        assert counts.sum() == 65
        assert leaks.sum() == 18


class TestBuildSinkSummary:
    @pytest.fixture
    def graph(self):
        return DiGraph(edges=[("A", "k"), ("B", "k"), ("C", "k")])

    def test_positive_observation_uses_prior_parents(self, graph):
        trace = ActivationTrace(
            {"A": 0, "B": 1, "k": 2, "C": 3}, frozenset({"A"})
        )
        summary = build_sink_summary(graph, UnattributedEvidence([trace]), "k")
        # C activated after k: not a candidate cause.
        assert summary.rows[0].characteristic == frozenset({"A", "B"})
        assert summary.rows[0].leaks == 1

    def test_negative_observation_uses_all_active_parents(self, graph):
        trace = ActivationTrace({"A": 0, "C": 5}, frozenset({"A"}))
        summary = build_sink_summary(graph, UnattributedEvidence([trace]), "k")
        assert summary.rows[0].characteristic == frozenset({"A", "C"})
        assert summary.rows[0].leaks == 0

    def test_sink_as_source_skipped(self, graph):
        trace = ActivationTrace({"k": 0, "A": 1}, frozenset({"k"}))
        summary = build_sink_summary(graph, UnattributedEvidence([trace]), "k")
        assert summary.n_observations == 0

    def test_unexplained_activation_counted(self, graph):
        # k active at 0 alongside A: no parent strictly earlier.
        trace = ActivationTrace({"A": 0, "k": 0}, frozenset({"A"}))
        summary = build_sink_summary(graph, UnattributedEvidence([trace]), "k")
        assert summary.n_observations == 0
        assert summary.n_unexplained == 1

    def test_unexposed_negative_counted(self, graph):
        # only non-parents active; D is not a parent of k.
        graph.add_edge("D", "X")
        trace = ActivationTrace({"D": 0}, frozenset({"D"}))
        summary = build_sink_summary(graph, UnattributedEvidence([trace]), "k")
        assert summary.n_observations == 0
        assert summary.n_unexposed == 1

    def test_strict_rule_requires_adjacent_step(self, graph):
        trace = ActivationTrace(
            {"A": 0, "B": 2, "k": 3}, frozenset({"A"})
        )
        relaxed = build_sink_summary(
            graph, UnattributedEvidence([trace]), "k", ParentRule.RELAXED
        )
        strict = build_sink_summary(
            graph, UnattributedEvidence([trace]), "k", ParentRule.STRICT
        )
        assert relaxed.rows[0].characteristic == frozenset({"A", "B"})
        assert strict.rows[0].characteristic == frozenset({"B"})

    def test_multiple_traces_aggregate(self, graph):
        traces = [
            ActivationTrace({"A": 0, "k": 1}, frozenset({"A"})),
            ActivationTrace({"A": 0, "k": 1}, frozenset({"A"})),
            ActivationTrace({"A": 0}, frozenset({"A"})),
        ]
        summary = build_sink_summary(graph, UnattributedEvidence(traces), "k")
        assert summary.n_characteristics == 1
        assert summary.rows[0].count == 3
        assert summary.rows[0].leaks == 2
