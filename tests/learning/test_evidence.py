"""Unit tests for evidence containers and cascade converters."""

import pytest

from repro.core.cascade import simulate_cascade
from repro.errors import EvidenceError
from repro.graph.digraph import DiGraph
from repro.learning.evidence import (
    ActivationTrace,
    AttributedEvidence,
    AttributedObservation,
    UnattributedEvidence,
    attributed_from_cascade,
    trace_from_cascade,
)


class TestAttributedObservation:
    def test_valid(self):
        observation = AttributedObservation(
            sources=frozenset({"a"}),
            active_nodes=frozenset({"a", "b"}),
            active_edges=frozenset({("a", "b")}),
        )
        assert observation.sources == frozenset({"a"})

    def test_requires_source(self):
        with pytest.raises(EvidenceError, match="source"):
            AttributedObservation(frozenset(), frozenset({"a"}), frozenset())

    def test_sources_must_be_active(self):
        with pytest.raises(EvidenceError, match="sources must be active"):
            AttributedObservation(
                frozenset({"a"}), frozenset({"b"}), frozenset()
            )

    def test_edge_endpoints_must_be_active(self):
        with pytest.raises(EvidenceError, match="inactive child"):
            AttributedObservation(
                frozenset({"a"}),
                frozenset({"a"}),
                frozenset({("a", "b")}),
            )
        with pytest.raises(EvidenceError, match="inactive parent"):
            AttributedObservation(
                frozenset({"a"}),
                frozenset({"a", "b"}),
                frozenset({("c", "b")}),
            )


class TestAttributedEvidence:
    def test_collection_protocol(self):
        obs = AttributedObservation(
            frozenset({"a"}), frozenset({"a"}), frozenset()
        )
        evidence = AttributedEvidence([obs])
        evidence.add(obs)
        assert len(evidence) == 2
        assert evidence[0] is obs
        assert list(evidence) == [obs, obs]

    def test_validate_against_graph(self):
        graph = DiGraph(edges=[("a", "b")])
        good = AttributedEvidence(
            [
                AttributedObservation(
                    frozenset({"a"}),
                    frozenset({"a", "b"}),
                    frozenset({("a", "b")}),
                )
            ]
        )
        good.validate_against(graph)  # no raise
        bad_node = AttributedEvidence(
            [AttributedObservation(frozenset({"x"}), frozenset({"x"}), frozenset())]
        )
        with pytest.raises(EvidenceError, match="unknown node"):
            bad_node.validate_against(graph)
        bad_edge = AttributedEvidence(
            [
                AttributedObservation(
                    frozenset({"b"}),
                    frozenset({"b", "a"}),
                    frozenset({("b", "a")}),
                )
            ]
        )
        with pytest.raises(EvidenceError, match="unknown edge"):
            bad_edge.validate_against(graph)


class TestActivationTrace:
    def test_valid(self):
        trace = ActivationTrace({"a": 0, "b": 2}, frozenset({"a"}))
        assert trace.is_active("b")
        assert not trace.is_active("c")
        assert trace.time_of("b") == 2
        assert trace.horizon == 2
        assert trace.active_nodes == frozenset({"a", "b"})

    def test_explicit_horizon(self):
        trace = ActivationTrace({"a": 0}, frozenset({"a"}), horizon=10)
        assert trace.horizon == 10

    def test_horizon_before_latest_rejected(self):
        with pytest.raises(EvidenceError, match="horizon"):
            ActivationTrace({"a": 0, "b": 5}, frozenset({"a"}), horizon=3)

    def test_source_needs_time(self):
        with pytest.raises(EvidenceError, match="no activation time"):
            ActivationTrace({"b": 1}, frozenset({"a"}))

    def test_empty_rejected(self):
        with pytest.raises(EvidenceError):
            ActivationTrace({}, frozenset({"a"}))


class TestUnattributedEvidence:
    def test_collection_protocol(self):
        trace = ActivationTrace({"a": 0}, frozenset({"a"}))
        evidence = UnattributedEvidence([trace])
        evidence.add(trace)
        assert len(evidence) == 2
        assert evidence[1] is trace

    def test_validate_against_graph(self):
        graph = DiGraph(nodes=["a"])
        good = UnattributedEvidence([ActivationTrace({"a": 0}, frozenset({"a"}))])
        good.validate_against(graph)
        bad = UnattributedEvidence([ActivationTrace({"x": 0}, frozenset({"x"}))])
        with pytest.raises(EvidenceError):
            bad.validate_against(graph)


class TestCascadeConverters:
    def test_attributed_roundtrip(self, small_random_icm, rng):
        cascade = simulate_cascade(small_random_icm, ["v0"], rng)
        observation = attributed_from_cascade(small_random_icm, cascade)
        assert observation.sources == cascade.sources
        assert observation.active_nodes == cascade.active_nodes
        assert len(observation.active_edges) == len(cascade.active_edges)

    def test_trace_keeps_rounds_drops_attribution(self, small_random_icm, rng):
        cascade = simulate_cascade(small_random_icm, ["v0"], rng)
        trace = trace_from_cascade(cascade)
        assert trace.sources == cascade.sources
        assert trace.active_nodes == cascade.active_nodes
        for node in cascade.active_nodes:
            assert trace.time_of(node) == cascade.activation_round[node]
