"""Tests for the joint Bayes posterior sampler."""

import numpy as np
import pytest

from repro.graph.digraph import DiGraph
from repro.learning.evidence import ActivationTrace, UnattributedEvidence
from repro.learning.joint_bayes import (
    JointBayesResult,
    fit_sink_posterior,
    train_joint_bayes,
)
from repro.learning.summaries import SinkSummary


class TestSingleParentPosterior:
    def test_matches_conjugate_beta(self):
        """One parent: the posterior is Beta(1+leaks, 1+misses) exactly."""
        summary = SinkSummary.from_counts("k", ["A"], [({"A"}, 40, 10)])
        posterior = fit_sink_posterior(summary, n_samples=4000, rng=0)
        samples = posterior.parent_samples("A")
        # Beta(11, 31): mean 11/42, var ab/((a+b)^2(a+b+1))
        assert samples.mean() == pytest.approx(11.0 / 42.0, abs=0.02)
        expected_std = np.sqrt(11 * 31 / (42.0**2 * 43.0))
        assert samples.std() == pytest.approx(expected_std, rel=0.25)

    def test_no_evidence_gives_uniform(self):
        summary = SinkSummary("k", ["A"])
        posterior = fit_sink_posterior(summary, n_samples=4000, rng=1)
        samples = posterior.parent_samples("A")
        assert samples.mean() == pytest.approx(0.5, abs=0.03)
        assert samples.std() == pytest.approx(np.sqrt(1.0 / 12.0), abs=0.03)


class TestAmbiguousPosterior:
    def test_ambiguity_resolved_by_unambiguous_rows(self):
        """A known-strong A explains the joint leaks, freeing B to be low."""
        summary = SinkSummary.from_counts(
            "k",
            ["A", "B"],
            [({"A"}, 100, 90), ({"B"}, 100, 10), ({"A", "B"}, 100, 92)],
        )
        posterior = fit_sink_posterior(summary, n_samples=3000, burn_in=1000, rng=2)
        a = posterior.parent_samples("A").mean()
        b = posterior.parent_samples("B").mean()
        assert a > 0.8
        assert b < 0.25

    def test_symmetric_evidence_symmetric_posterior(self):
        summary = SinkSummary.from_counts("k", ["A", "B"], [({"A", "B"}, 200, 100)])
        posterior = fit_sink_posterior(summary, n_samples=4000, burn_in=1000, rng=3)
        a = posterior.parent_samples("A")
        b = posterior.parent_samples("B")
        assert abs(a.mean() - b.mean()) < 0.06

    def test_joint_constraint_respected(self):
        """Samples satisfy the evidence: combined leak prob near 0.5."""
        summary = SinkSummary.from_counts("k", ["A", "B"], [({"A", "B"}, 500, 250)])
        posterior = fit_sink_posterior(summary, n_samples=2000, burn_in=1000, rng=4)
        combined = 1.0 - (1.0 - posterior.samples[:, 0]) * (
            1.0 - posterior.samples[:, 1]
        )
        assert combined.mean() == pytest.approx(0.5, abs=0.03)

    def test_table2_ridge_structure_captured(self):
        """Table II evidence: the posterior spreads along a ridge with the
        correlation structure the paper's Fig. 11 scatters show -- B trades
        off against both A and C (negative), while A and C move together."""
        summary = SinkSummary.from_counts(
            "k",
            ["A", "B", "C"],
            [({"A", "B"}, 100, 50), ({"B", "C"}, 100, 50), ({"A", "B", "C"}, 100, 75)],
        )
        posterior = fit_sink_posterior(summary, n_samples=3000, burn_in=2000, rng=5)
        a = posterior.samples[:, posterior.parents.index("A")]
        b = posterior.samples[:, posterior.parents.index("B")]
        c = posterior.samples[:, posterior.parents.index("C")]
        assert np.corrcoef(a, b)[0, 1] < -0.3
        assert np.corrcoef(b, c)[0, 1] < -0.3
        assert np.corrcoef(a, c)[0, 1] > 0.1
        # and the spread is substantial -- EM would give a single point
        assert posterior.standard_deviations.min() > 0.03


class TestPosteriorAPI:
    def test_credible_interval_contains_mean(self):
        summary = SinkSummary.from_counts("k", ["A"], [({"A"}, 30, 15)])
        posterior = fit_sink_posterior(summary, n_samples=2000, rng=6)
        lower, upper = posterior.credible_interval(0.9)
        assert lower[0] < posterior.means[0] < upper[0]

    def test_invalid_level(self):
        summary = SinkSummary.from_counts("k", ["A"], [({"A"}, 3, 1)])
        posterior = fit_sink_posterior(summary, n_samples=100, rng=7)
        with pytest.raises(ValueError):
            posterior.credible_interval(1.5)

    def test_no_parents(self):
        summary = SinkSummary("k", [])
        posterior = fit_sink_posterior(summary, n_samples=10, rng=8)
        assert posterior.samples.shape == (10, 0)

    def test_invalid_parameters(self):
        summary = SinkSummary.from_counts("k", ["A"], [({"A"}, 3, 1)])
        with pytest.raises(ValueError):
            fit_sink_posterior(summary, n_samples=0)
        with pytest.raises(ValueError):
            fit_sink_posterior(summary, proposal_scale=0.0)


class TestTrainJointBayes:
    @pytest.fixture
    def trained(self):
        graph = DiGraph(edges=[("A", "k"), ("B", "k")])
        traces = [
            ActivationTrace({"A": 0, "k": 1}, frozenset({"A"}))
            for _ in range(20)
        ] + [
            ActivationTrace({"B": 0}, frozenset({"B"}))
            for _ in range(20)
        ]
        return (
            graph,
            train_joint_bayes(
                graph, UnattributedEvidence(traces), n_samples=1000, rng=9
            ),
        )

    def test_result_structure(self, trained):
        graph, result = trained
        assert isinstance(result, JointBayesResult)
        assert result.means.shape == (2,)
        assert "k" in result.posteriors

    def test_learned_means(self, trained):
        graph, result = trained
        a_index = graph.edge_index("A", "k")
        b_index = graph.edge_index("B", "k")
        assert result.means[a_index] > 0.85  # 20/20 leaks
        assert result.means[b_index] < 0.15  # 0/20 leaks

    def test_to_icm_and_beta_icm(self, trained):
        graph, result = trained
        icm = result.to_icm()
        assert np.all(icm.edge_probabilities >= 0.0)
        beta = result.to_beta_icm()
        assert np.allclose(beta.means(), np.clip(result.means, 1e-6, 1 - 1e-6), atol=0.01)

    def test_sample_icm_gaussian(self, trained):
        graph, result = trained
        rng = np.random.default_rng(0)
        draws = np.array(
            [result.sample_icm(rng).edge_probabilities for _ in range(200)]
        )
        assert np.allclose(draws.mean(axis=0), result.means, atol=0.05)


class TestEffectiveSampleSize:
    def test_per_parameter_ess_reported(self):
        summary = SinkSummary.from_counts(
            "k", ["A", "B"], [({"A"}, 30, 10), ({"A", "B"}, 30, 20)]
        )
        posterior = fit_sink_posterior(summary, n_samples=800, rng=11)
        ess = posterior.effective_sample_sizes()
        assert ess.shape == (2,)
        assert np.all(ess >= 1.0)
        assert np.all(ess <= 800.0)

    def test_empty_posterior_ess(self):
        posterior = fit_sink_posterior(SinkSummary("k", []), n_samples=10, rng=0)
        assert posterior.effective_sample_sizes().shape == (0,)

    def test_heavier_thinning_raises_ess_fraction(self):
        summary = SinkSummary.from_counts("k", ["A", "B"], [({"A", "B"}, 200, 100)])
        dense = fit_sink_posterior(summary, n_samples=600, thinning=0, rng=12)
        thinned = fit_sink_posterior(summary, n_samples=600, thinning=9, rng=12)
        dense_fraction = dense.effective_sample_sizes().mean() / 600
        thinned_fraction = thinned.effective_sample_sizes().mean() / 600
        assert thinned_fraction > dense_fraction


class TestPriorLikelihoodEquivalence:
    def test_both_factorisations_agree(self):
        """Prior-from-unambiguous + ambiguous likelihood is algebraically
        the same posterior as uniform prior + full likelihood; the two
        sampler configurations must agree within Monte-Carlo error."""
        summary = SinkSummary.from_counts(
            "k",
            ["A", "B"],
            [({"A"}, 60, 40), ({"B"}, 60, 10), ({"A", "B"}, 80, 55)],
        )
        default = fit_sink_posterior(
            summary, n_samples=3000, burn_in=1500, rng=30
        )
        literal = fit_sink_posterior(
            summary,
            n_samples=3000,
            burn_in=1500,
            include_unambiguous_in_likelihood=True,
            rng=31,
        )
        assert np.allclose(default.means, literal.means, atol=0.04)
        assert np.allclose(
            default.standard_deviations, literal.standard_deviations, atol=0.04
        )
