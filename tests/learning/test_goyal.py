"""Tests for Goyal et al.'s equal-credit heuristic."""

import numpy as np
import pytest

from repro.graph.digraph import DiGraph
from repro.learning.evidence import ActivationTrace, UnattributedEvidence
from repro.learning.goyal import goyal_sink_probabilities, train_goyal
from repro.learning.summaries import SinkSummary


class TestSinkProbabilities:
    def test_unambiguous_evidence_is_exact_frequency(self):
        summary = SinkSummary.from_counts("k", ["A"], [({"A"}, 10, 4)])
        probabilities = goyal_sink_probabilities(summary)
        assert probabilities[0] == pytest.approx(0.4)

    def test_credit_split_equally(self):
        # one ambiguous leak between A and B: each gets half credit.
        summary = SinkSummary.from_counts("k", ["A", "B"], [({"A", "B"}, 1, 1)])
        probabilities = goyal_sink_probabilities(summary)
        assert np.allclose(probabilities, [0.5, 0.5])

    def test_table1_values(self):
        """Hand-computed credits for the paper's Table I."""
        summary = SinkSummary.from_counts(
            "k",
            ["A", "B", "C"],
            [({"A", "B"}, 5, 1), ({"B", "C"}, 50, 15), ({"A", "C"}, 10, 2)],
        )
        probabilities = goyal_sink_probabilities(summary)
        # A: (1/2 + 2/2) / (5 + 10); B: (1/2 + 15/2) / 55; C: (15/2 + 2/2) / 60
        assert probabilities[summary.parent_index("A")] == pytest.approx(1.5 / 15)
        assert probabilities[summary.parent_index("B")] == pytest.approx(8.0 / 55)
        assert probabilities[summary.parent_index("C")] == pytest.approx(8.5 / 60)

    def test_no_exposure_gives_zero(self):
        summary = SinkSummary("k", ["A", "B"])
        summary.observe(frozenset({"A"}), activated=True)
        probabilities = goyal_sink_probabilities(summary)
        assert probabilities[summary.parent_index("B")] == 0.0

    def test_bias_toward_mean_on_skewed_edges(self):
        """The paper's critique: equal credit pulls skewed edges together."""
        # A almost always leaks, B almost never; always observed together.
        summary = SinkSummary.from_counts(
            "k", ["A", "B"], [({"A", "B"}, 100, 80)]
        )
        probabilities = goyal_sink_probabilities(summary)
        # both edges get identical estimates despite any underlying skew
        assert probabilities[0] == probabilities[1]


class TestTrainGoyal:
    def test_trains_point_icm(self):
        graph = DiGraph(edges=[("A", "k"), ("B", "k")])
        traces = [
            ActivationTrace({"A": 0, "k": 1}, frozenset({"A"})),
            ActivationTrace({"A": 0}, frozenset({"A"})),
            ActivationTrace({"B": 0, "k": 1}, frozenset({"B"})),
        ]
        model = train_goyal(graph, UnattributedEvidence(traces))
        assert model.probability("A", "k") == pytest.approx(0.5)
        assert model.probability("B", "k") == pytest.approx(1.0)

    def test_sink_restriction(self):
        graph = DiGraph(edges=[("A", "k"), ("A", "j")])
        traces = [ActivationTrace({"A": 0, "k": 1, "j": 1}, frozenset({"A"}))]
        model = train_goyal(graph, UnattributedEvidence(traces), sinks=["k"])
        assert model.probability("A", "k") == 1.0
        assert model.probability("A", "j") == 0.0  # untrained
