"""Tests for the filtered (unambiguous-only) baseline."""

import numpy as np
import pytest

from repro.graph.digraph import DiGraph
from repro.learning.evidence import ActivationTrace, UnattributedEvidence
from repro.learning.filtered import train_filtered


@pytest.fixture
def graph():
    return DiGraph(edges=[("A", "k"), ("B", "k")])


class TestFiltered:
    def test_unambiguous_observations_counted(self, graph):
        traces = [
            ActivationTrace({"A": 0, "k": 1}, frozenset({"A"})),
            ActivationTrace({"A": 0, "k": 1}, frozenset({"A"})),
            ActivationTrace({"A": 0}, frozenset({"A"})),
        ]
        model = train_filtered(graph, UnattributedEvidence(traces))
        assert model.edge_parameters("A", "k") == (3.0, 2.0)

    def test_ambiguous_observations_ignored(self, graph):
        traces = [
            ActivationTrace({"A": 0, "B": 0, "k": 1}, frozenset({"A"})),
            ActivationTrace({"A": 0, "B": 0}, frozenset({"A"})),
        ]
        model = train_filtered(graph, UnattributedEvidence(traces))
        # both observations had two candidate parents: nothing learned
        assert model.edge_parameters("A", "k") == (1.0, 1.0)
        assert model.edge_parameters("B", "k") == (1.0, 1.0)

    def test_mixed_evidence(self, graph):
        traces = [
            ActivationTrace({"A": 0, "B": 0, "k": 1}, frozenset({"A"})),  # ambiguous
            ActivationTrace({"B": 0, "k": 1}, frozenset({"B"})),  # B alone
            ActivationTrace({"B": 0}, frozenset({"B"})),  # B alone, no leak
        ]
        model = train_filtered(graph, UnattributedEvidence(traces))
        assert model.edge_parameters("A", "k") == (1.0, 1.0)
        assert model.edge_parameters("B", "k") == (2.0, 2.0)

    def test_sink_restriction(self, graph):
        graph.add_edge("A", "j")
        traces = [
            ActivationTrace({"A": 0, "k": 1, "j": 1}, frozenset({"A"})),
        ]
        model = train_filtered(graph, UnattributedEvidence(traces), sinks=["k"])
        assert model.edge_parameters("A", "k") == (2.0, 1.0)
        assert model.edge_parameters("A", "j") == (1.0, 1.0)

    def test_no_bias_on_skewed_pair(self, rng):
        """Filtered is unbiased where Goyal is biased (paper Fig. 7 story)."""
        from repro.core.cascade import simulate_cascade
        from repro.graph.generators import star_fragment
        from repro.learning.evidence import trace_from_cascade
        from repro.learning.goyal import train_goyal

        truth = star_fragment([0.9, 0.1])
        traces = []
        for _ in range(4000):
            n_sources = rng.integers(1, 3)
            sources = list(rng.choice(["u0", "u1"], size=n_sources, replace=False))
            traces.append(trace_from_cascade(simulate_cascade(truth, sources, rng=rng)))
        evidence = UnattributedEvidence(traces)
        filtered = train_filtered(truth.graph, evidence, sinks=["k"])
        goyal = train_goyal(truth.graph, evidence, sinks=["k"])
        filtered_error = abs(filtered.mean("u0", "k") - 0.9) + abs(
            filtered.mean("u1", "k") - 0.1
        )
        goyal_error = abs(goyal.probability("u0", "k") - 0.9) + abs(
            goyal.probability("u1", "k") - 0.1
        )
        assert filtered_error < goyal_error
