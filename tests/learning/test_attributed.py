"""Tests for attributed betaICM training (the paper's counting rules)."""

import numpy as np
import pytest

from repro.core.cascade import simulate_cascade
from repro.core.icm import ICM
from repro.errors import EvidenceError
from repro.graph.digraph import DiGraph
from repro.graph.generators import random_icm
from repro.learning.attributed import train_beta_icm
from repro.learning.evidence import (
    AttributedEvidence,
    AttributedObservation,
    attributed_from_cascade,
)


class TestCountingRules:
    @pytest.fixture
    def graph(self):
        return DiGraph(edges=[("a", "b"), ("b", "c")])

    def test_active_edge_increments_alpha(self, graph):
        evidence = AttributedEvidence(
            [
                AttributedObservation(
                    frozenset({"a"}),
                    frozenset({"a", "b"}),
                    frozenset({("a", "b")}),
                )
            ]
        )
        model = train_beta_icm(graph, evidence)
        assert model.edge_parameters("a", "b") == (2.0, 1.0)

    def test_active_parent_inactive_edge_increments_beta(self, graph):
        evidence = AttributedEvidence(
            [
                AttributedObservation(
                    frozenset({"a"}),
                    frozenset({"a", "b"}),
                    frozenset({("a", "b")}),
                )
            ]
        )
        model = train_beta_icm(graph, evidence)
        # b was active, b->c did not fire
        assert model.edge_parameters("b", "c") == (1.0, 2.0)

    def test_inactive_parent_leaves_prior(self, graph):
        evidence = AttributedEvidence(
            [
                AttributedObservation(
                    frozenset({"a"}), frozenset({"a"}), frozenset()
                )
            ]
        )
        model = train_beta_icm(graph, evidence)
        assert model.edge_parameters("b", "c") == (1.0, 1.0)
        assert model.edge_parameters("a", "b") == (1.0, 2.0)

    def test_counts_accumulate_over_objects(self, graph):
        observation = AttributedObservation(
            frozenset({"a"}),
            frozenset({"a", "b", "c"}),
            frozenset({("a", "b"), ("b", "c")}),
        )
        evidence = AttributedEvidence([observation] * 10)
        model = train_beta_icm(graph, evidence)
        assert model.edge_parameters("a", "b") == (11.0, 1.0)
        assert model.edge_parameters("b", "c") == (11.0, 1.0)

    def test_custom_prior(self, graph):
        evidence = AttributedEvidence()
        model = train_beta_icm(graph, evidence, prior_alpha=2.0, prior_beta=3.0)
        assert model.edge_parameters("a", "b") == (2.0, 3.0)

    def test_evidence_validated(self, graph):
        evidence = AttributedEvidence(
            [AttributedObservation(frozenset({"x"}), frozenset({"x"}), frozenset())]
        )
        with pytest.raises(EvidenceError):
            train_beta_icm(graph, evidence)


class TestRecovery:
    def test_recovers_ground_truth_probabilities(self):
        """With many attributed cascades, Beta means approach the truth."""
        rng = np.random.default_rng(0)
        truth = random_icm(8, 20, rng=rng, probability_range=(0.1, 0.9))
        evidence = AttributedEvidence()
        nodes = truth.graph.nodes()
        for _ in range(3000):
            source = nodes[rng.integers(0, len(nodes))]
            cascade = simulate_cascade(truth, [source], rng=rng)
            evidence.add(attributed_from_cascade(truth, cascade))
        model = train_beta_icm(truth.graph, evidence)
        # only compare edges with meaningful exposure
        errors = []
        for edge in truth.graph.iter_edges():
            alpha, beta = model.edge_parameters(edge.src, edge.dst)
            if alpha + beta > 50:
                errors.append(
                    abs(model.mean(edge.src, edge.dst) - truth.probability_by_index(edge.index))
                )
        assert errors, "no edges with enough exposure"
        assert float(np.mean(errors)) < 0.06

    def test_uncertainty_shrinks_with_evidence(self):
        rng = np.random.default_rng(1)
        truth = random_icm(6, 12, rng=rng, probability_range=(0.3, 0.7))
        nodes = truth.graph.nodes()

        def train(n):
            evidence = AttributedEvidence()
            local = np.random.default_rng(2)
            for _ in range(n):
                source = nodes[local.integers(0, len(nodes))]
                cascade = simulate_cascade(truth, [source], rng=local)
                evidence.add(attributed_from_cascade(truth, cascade))
            return train_beta_icm(truth.graph, evidence)

        small = train(50)
        large = train(2000)
        assert large.variances().mean() < small.variances().mean()
