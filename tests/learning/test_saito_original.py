"""Tests for the original time-discrete Saito EM."""

import numpy as np
import pytest

from repro.core.cascade import simulate_cascade
from repro.evaluation.metrics import rmse
from repro.graph.digraph import DiGraph
from repro.graph.generators import star_fragment
from repro.learning.evidence import (
    ActivationTrace,
    UnattributedEvidence,
    trace_from_cascade,
)
from repro.learning.saito_em import train_saito_em
from repro.learning.saito_original import (
    fit_sink_em_original,
    train_saito_original,
)


def synchronous_star_evidence(probabilities, n_objects, rng):
    """Cascade traces with strictly synchronous (round) times."""
    truth = star_fragment(probabilities)
    generator = np.random.default_rng(rng)
    parents = [f"u{j}" for j in range(len(probabilities))]
    traces = []
    for _ in range(n_objects):
        size = int(generator.integers(1, len(parents) + 1))
        chosen = generator.choice(len(parents), size=size, replace=False)
        sources = [parents[int(i)] for i in chosen]
        traces.append(
            trace_from_cascade(simulate_cascade(truth, sources, rng=generator))
        )
    return truth, UnattributedEvidence(traces)


class TestFitOriginal:
    def test_single_parent_frequency(self):
        graph = DiGraph(edges=[("A", "k")])
        traces = [
            ActivationTrace({"A": 0, "k": 1}, frozenset({"A"})),
            ActivationTrace({"A": 0, "k": 1}, frozenset({"A"})),
            ActivationTrace({"A": 0}, frozenset({"A"})),
            ActivationTrace({"A": 0}, frozenset({"A"})),
        ]
        parents, result = fit_sink_em_original(
            graph, UnattributedEvidence(traces), "k"
        )
        assert parents == ["A"]
        assert result.probabilities[0] == pytest.approx(0.5, abs=1e-6)

    def test_no_trials_keeps_initial(self):
        graph = DiGraph(edges=[("A", "k")])
        traces = [ActivationTrace({"B": 0}, frozenset({"B"}))]
        graph.add_node("B")
        parents, result = fit_sink_em_original(
            graph, UnattributedEvidence(traces), "k"
        )
        assert result.n_iterations == 0

    def test_late_activation_counts_as_negative_trial(self):
        """Child activating at t+2 is a FAILED trial for a t=0 parent under
        the strict assumption (the mis-attribution the paper fixes)."""
        graph = DiGraph(edges=[("A", "k"), ("B", "k")])
        traces = [
            ActivationTrace({"A": 0, "B": 1, "k": 2}, frozenset({"A"}))
            for _ in range(20)
        ]
        parents, result = fit_sink_em_original(
            graph, UnattributedEvidence(traces), "k"
        )
        estimates = dict(zip(parents, result.probabilities))
        assert estimates["A"] == pytest.approx(0.0, abs=1e-6)  # all "failures"
        assert estimates["B"] == pytest.approx(1.0, abs=1e-6)

    def test_matches_relaxed_on_synchronous_data(self):
        """On round-timed cascades the two formulations agree closely."""
        probabilities = (0.7, 0.3)
        truth, evidence = synchronous_star_evidence(probabilities, 4000, rng=0)
        original = train_saito_original(truth.graph, evidence, sinks=["k"])
        relaxed = train_saito_em(truth.graph, evidence, sinks=["k"])
        for parent, p_true in zip(("u0", "u1"), probabilities):
            assert original.probability(parent, "k") == pytest.approx(
                relaxed.probability(parent, "k"), abs=0.05
            )
            assert original.probability(parent, "k") == pytest.approx(
                p_true, abs=0.06
            )


class TestAsynchronousDegradation:
    def test_relaxed_beats_original_on_delayed_delivery(self):
        """The paper's motivation for the Appendix modification."""
        truth = star_fragment((0.7, 0.3))
        rng = np.random.default_rng(1)
        traces = []
        for _ in range(4000):
            size = int(rng.integers(1, 3))
            chosen = [f"u{int(i)}" for i in rng.choice(2, size=size, replace=False)]
            times = {parent: 0 for parent in chosen}
            leaked = any(
                rng.random() < truth.probability(parent, "k") for parent in chosen
            )
            if leaked:
                times["k"] = int(rng.integers(1, 4))  # asynchronous arrival
            traces.append(ActivationTrace(times, frozenset({chosen[0]})))
        evidence = UnattributedEvidence(traces)
        original = train_saito_original(truth.graph, evidence, sinks=["k"])
        relaxed = train_saito_em(truth.graph, evidence, sinks=["k"])
        truth_vector = [0.7, 0.3]
        original_error = rmse(
            [original.probability("u0", "k"), original.probability("u1", "k")],
            truth_vector,
        )
        relaxed_error = rmse(
            [relaxed.probability("u0", "k"), relaxed.probability("u1", "k")],
            truth_vector,
        )
        assert relaxed_error < original_error


class TestTrainFullGraph:
    def test_chain_graph(self):
        graph = DiGraph(edges=[("a", "b"), ("b", "c")])
        traces = [
            ActivationTrace({"a": 0, "b": 1, "c": 2}, frozenset({"a"})),
            ActivationTrace({"a": 0, "b": 1}, frozenset({"a"})),
            ActivationTrace({"a": 0}, frozenset({"a"})),
            ActivationTrace({"a": 0}, frozenset({"a"})),
        ]
        model = train_saito_original(graph, UnattributedEvidence(traces))
        assert model.probability("a", "b") == pytest.approx(0.5, abs=1e-6)
        assert model.probability("b", "c") == pytest.approx(0.5, abs=1e-6)
