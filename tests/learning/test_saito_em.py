"""Tests for the (relaxed, summarised) Saito EM learner."""

import numpy as np
import pytest

from repro.graph.digraph import DiGraph
from repro.learning.evidence import ActivationTrace, UnattributedEvidence
from repro.learning.saito_em import (
    fit_sink_em,
    fit_sink_em_restarts,
    summary_log_likelihood,
    train_saito_em,
)
from repro.learning.summaries import SinkSummary


@pytest.fixture
def table2_summary():
    """The paper's Table II: evidence inducing a multimodal posterior."""
    return SinkSummary.from_counts(
        "k",
        ["A", "B", "C"],
        [
            ({"A", "B"}, 100, 50),
            ({"B", "C"}, 100, 50),
            ({"A", "B", "C"}, 100, 75),
        ],
    )


class TestLogLikelihood:
    def test_unambiguous_maximum_at_frequency(self):
        summary = SinkSummary.from_counts("k", ["A"], [({"A"}, 10, 4)])
        at_mle = summary_log_likelihood(summary, np.array([0.4]))
        nearby = summary_log_likelihood(summary, np.array([0.5]))
        assert at_mle > nearby

    def test_empty_summary_zero(self):
        summary = SinkSummary("k", ["A"])
        assert summary_log_likelihood(summary, np.array([0.3])) == 0.0

    def test_shape_validated(self, table2_summary):
        with pytest.raises(ValueError):
            summary_log_likelihood(table2_summary, np.array([0.5]))


class TestFitSinkEM:
    def test_single_parent_converges_to_frequency(self):
        summary = SinkSummary.from_counts("k", ["A"], [({"A"}, 20, 5)])
        result = fit_sink_em(summary)
        assert result.converged
        assert result.probabilities[0] == pytest.approx(0.25, abs=1e-6)

    def test_em_monotonically_improves_likelihood(self, table2_summary):
        start = np.array([0.3, 0.3, 0.3])
        previous = summary_log_likelihood(table2_summary, start)
        kappa = start
        for _ in range(10):
            result = fit_sink_em(table2_summary, initial=kappa, max_iterations=1)
            current = summary_log_likelihood(table2_summary, result.probabilities)
            assert current >= previous - 1e-9
            previous = current
            kappa = result.probabilities

    def test_skewed_recovery(self, rng):
        """EM finds skewed parameters when evidence disambiguates them."""
        from repro.core.cascade import simulate_cascade
        from repro.graph.generators import star_fragment
        from repro.learning.evidence import trace_from_cascade
        from repro.learning.summaries import build_sink_summary

        truth = star_fragment([0.9, 0.1])
        traces = []
        for _ in range(3000):
            n_sources = rng.integers(1, 3)
            sources = list(rng.choice(["u0", "u1"], size=n_sources, replace=False))
            traces.append(trace_from_cascade(simulate_cascade(truth, sources, rng=rng)))
        summary = build_sink_summary(
            truth.graph, UnattributedEvidence(traces), "k"
        )
        result = fit_sink_em(summary)
        assert result.probabilities[0] == pytest.approx(0.9, abs=0.06)
        assert result.probabilities[1] == pytest.approx(0.1, abs=0.06)

    def test_invalid_initial_rejected(self, table2_summary):
        with pytest.raises(ValueError):
            fit_sink_em(table2_summary, initial=[0.5, 0.5])
        with pytest.raises(ValueError):
            fit_sink_em(table2_summary, initial=[0.5, 0.5, 1.5])

    def test_iteration_budget_respected(self, table2_summary):
        result = fit_sink_em(table2_summary, max_iterations=3, tolerance=0.0)
        assert result.n_iterations == 3
        assert not result.converged


class TestRestarts:
    def test_restarts_collapse_to_point_unlike_posterior(self, table2_summary):
        """The paper's Fig. 11 contrast: EM returns (near-)point estimates
        with no spread, while the joint-Bayes posterior for the same
        evidence has an order of magnitude more dispersion along the
        likelihood ridge."""
        from repro.learning.joint_bayes import fit_sink_posterior

        results = fit_sink_em_restarts(table2_summary, n_restarts=30, rng=0)
        endpoints = np.array([result.probabilities for result in results])
        em_spread = endpoints.std(axis=0).max()
        posterior = fit_sink_posterior(
            table2_summary, n_samples=2000, burn_in=2000, rng=1
        )
        bayes_spread = posterior.standard_deviations.min()
        assert bayes_spread > 3.0 * em_spread

    def test_restart_endpoints_near_mle(self, table2_summary):
        """Table II's unique MLE is (0.5, 0, 0.5); converged EM finds it."""
        results = fit_sink_em_restarts(table2_summary, n_restarts=10, rng=2)
        best = max(results, key=lambda result: result.log_likelihood)
        assert best.probabilities[0] == pytest.approx(0.5, abs=0.06)
        assert best.probabilities[1] == pytest.approx(0.0, abs=0.12)
        assert best.probabilities[2] == pytest.approx(0.5, abs=0.06)

    def test_restart_count_validated(self, table2_summary):
        with pytest.raises(ValueError):
            fit_sink_em_restarts(table2_summary, n_restarts=0)


class TestTrainSaitoEM:
    def test_trains_full_graph(self):
        graph = DiGraph(edges=[("A", "k"), ("B", "k")])
        traces = [
            ActivationTrace({"A": 0, "k": 1}, frozenset({"A"})),
            ActivationTrace({"A": 0}, frozenset({"A"})),
            ActivationTrace({"B": 0, "k": 1}, frozenset({"B"})),
            ActivationTrace({"B": 0, "k": 1}, frozenset({"B"})),
        ]
        model = train_saito_em(graph, UnattributedEvidence(traces))
        assert model.probability("A", "k") == pytest.approx(0.5, abs=1e-6)
        assert model.probability("B", "k") == pytest.approx(1.0, abs=1e-6)

    def test_unexposed_edge_gets_zero(self):
        graph = DiGraph(edges=[("A", "k"), ("B", "k")])
        traces = [ActivationTrace({"A": 0, "k": 1}, frozenset({"A"}))]
        model = train_saito_em(graph, UnattributedEvidence(traces))
        assert model.probability("B", "k") == 0.0

    def test_best_of_restarts_used(self, rng):
        graph = DiGraph(edges=[("A", "k"), ("B", "k")])
        traces = [
            ActivationTrace({"A": 0, "B": 0, "k": 1}, frozenset({"A"}))
            for _ in range(10)
        ]
        model = train_saito_em(
            graph, UnattributedEvidence(traces), n_restarts=5, rng=rng
        )
        # any solution must explain the always-leaking pair
        p_joint = 1 - (1 - model.probability("A", "k")) * (
            1 - model.probability("B", "k")
        )
        assert p_joint > 0.95
