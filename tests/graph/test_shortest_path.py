"""Tests for weighted earliest-arrival (Dijkstra)."""

import numpy as np
import pytest

from repro.graph.digraph import DiGraph
from repro.graph.shortest_path import earliest_arrival_times


@pytest.fixture
def weighted_graph():
    graph = DiGraph(
        edges=[("s", "a"), ("s", "b"), ("a", "t"), ("b", "t"), ("a", "b")]
    )
    # s->a=1, s->b=5, a->t=10, b->t=1, a->b=1
    weights = np.array([1.0, 5.0, 10.0, 1.0, 1.0])
    return graph, weights


class TestEarliestArrival:
    def test_source_time_zero(self, weighted_graph):
        graph, weights = weighted_graph
        arrival = earliest_arrival_times(graph, ["s"], weights)
        assert arrival["s"] == 0.0

    def test_picks_cheapest_route(self, weighted_graph):
        graph, weights = weighted_graph
        arrival = earliest_arrival_times(graph, ["s"], weights)
        # s->a->b->t = 1+1+1 = 3 beats s->b->t = 6 and s->a->t = 11
        assert arrival["t"] == pytest.approx(3.0)
        assert arrival["b"] == pytest.approx(2.0)

    def test_inactive_edges_blocked(self, weighted_graph):
        graph, weights = weighted_graph
        active = np.ones(5, dtype=bool)
        active[graph.edge_index("a", "b")] = False
        arrival = earliest_arrival_times(graph, ["s"], weights, edge_active=active)
        # without a->b: best is s->b->t = 6
        assert arrival["t"] == pytest.approx(6.0)

    def test_unreachable_nodes_absent(self):
        graph = DiGraph(edges=[("a", "b"), ("c", "d")])
        arrival = earliest_arrival_times(graph, ["a"], [1.0, 1.0])
        assert "c" not in arrival
        assert "d" not in arrival

    def test_multiple_sources(self, weighted_graph):
        graph, weights = weighted_graph
        arrival = earliest_arrival_times(graph, ["s", "b"], weights)
        assert arrival["b"] == 0.0
        assert arrival["t"] == pytest.approx(1.0)

    def test_zero_delays_allowed(self, weighted_graph):
        graph, _weights = weighted_graph
        arrival = earliest_arrival_times(graph, ["s"], np.zeros(5))
        assert all(time == 0.0 for time in arrival.values())

    def test_negative_delay_rejected(self, weighted_graph):
        graph, weights = weighted_graph
        weights = weights.copy()
        weights[0] = -1.0
        with pytest.raises(ValueError, match="non-negative"):
            earliest_arrival_times(graph, ["s"], weights)

    def test_wrong_shapes_rejected(self, weighted_graph):
        graph, weights = weighted_graph
        with pytest.raises(ValueError):
            earliest_arrival_times(graph, ["s"], weights[:3])
        with pytest.raises(ValueError):
            earliest_arrival_times(
                graph, ["s"], weights, edge_active=np.ones(2, dtype=bool)
            )

    def test_matches_bfs_on_unit_weights(self):
        from repro.graph.generators import gnm_random_graph
        from repro.graph.traversal import descendants_within_radius

        graph = gnm_random_graph(15, 60, rng=0)
        arrival = earliest_arrival_times(graph, ["v0"], np.ones(60))
        for radius in range(4):
            within = {
                node for node, time in arrival.items() if time <= radius
            }
            assert within == descendants_within_radius(graph, "v0", radius)
