"""Cross-validation of the graph substrate against networkx.

networkx is not a runtime dependency, but where it is available the
reachability, radius, and shortest-path primitives -- and the RWR
baseline -- are checked against its reference implementations on random
graphs.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

networkx = pytest.importorskip("networkx")

from repro.baselines.rwr import rwr_scores
from repro.core.icm import ICM
from repro.graph.generators import gnm_random_graph, random_icm
from repro.graph.shortest_path import earliest_arrival_times
from repro.graph.traversal import bfs_reachable, descendants_within_radius


def to_networkx(graph, weights=None):
    nx_graph = networkx.DiGraph()
    nx_graph.add_nodes_from(graph.nodes())
    for edge in graph.iter_edges():
        weight = 1.0 if weights is None else float(weights[edge.index])
        nx_graph.add_edge(edge.src, edge.dst, weight=weight)
    return nx_graph


class TestReachability:
    @given(seed=st.integers(min_value=0, max_value=300))
    @settings(max_examples=30, deadline=None)
    def test_property_descendants_match(self, seed):
        rng = np.random.default_rng(seed)
        graph = gnm_random_graph(12, 40, rng=rng)
        nx_graph = to_networkx(graph)
        ours = bfs_reachable(graph, ["v0"])
        theirs = networkx.descendants(nx_graph, "v0") | {"v0"}
        assert ours == theirs

    @given(
        seed=st.integers(min_value=0, max_value=200),
        radius=st.integers(min_value=0, max_value=4),
    )
    @settings(max_examples=30, deadline=None)
    def test_property_radius_matches_ego_graph(self, seed, radius):
        rng = np.random.default_rng(seed)
        graph = gnm_random_graph(12, 40, rng=rng)
        nx_graph = to_networkx(graph)
        ours = descendants_within_radius(graph, "v0", radius)
        theirs = set(
            networkx.ego_graph(nx_graph, "v0", radius=radius).nodes()
        )
        assert ours == theirs


class TestShortestPath:
    @given(seed=st.integers(min_value=0, max_value=300))
    @settings(max_examples=30, deadline=None)
    def test_property_dijkstra_matches(self, seed):
        rng = np.random.default_rng(seed)
        graph = gnm_random_graph(10, 35, rng=rng)
        weights = rng.uniform(0.1, 5.0, size=graph.n_edges)
        nx_graph = to_networkx(graph, weights)
        ours = earliest_arrival_times(graph, ["v0"], weights)
        theirs = networkx.single_source_dijkstra_path_length(
            nx_graph, "v0", weight="weight"
        )
        assert set(ours) == set(theirs)
        for node, time in ours.items():
            assert time == pytest.approx(theirs[node], abs=1e-9)


class TestRwrAgainstPagerank:
    def test_matches_personalised_pagerank(self):
        """RWR from a source IS personalised PageRank with that restart
        vector (for graphs where every node has positive-weight out-edges,
        so the dangling-node conventions cannot differ)."""
        rng = np.random.default_rng(5)
        for _ in range(5):
            while True:
                model = random_icm(10, 50, rng=rng, probability_range=(0.2, 0.9))
                if all(
                    model.graph.out_degree(node) > 0
                    for node in model.graph.nodes()
                ):
                    break
            source = "v0"
            ours = rwr_scores(model, source, restart=0.2, tolerance=1e-12)
            nx_graph = to_networkx(model.graph, model.edge_probabilities)
            theirs = networkx.pagerank(
                nx_graph,
                alpha=0.8,
                personalization={source: 1.0},
                weight="weight",
                tol=1e-12,
                max_iter=500,
            )
            for node in model.graph.nodes():
                assert ours[node] == pytest.approx(theirs[node], abs=1e-6)
