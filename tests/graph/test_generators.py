"""Unit and property tests for the random graph / model generators."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.beta_icm import BetaICM
from repro.core.icm import ICM
from repro.errors import GraphError
from repro.graph.generators import (
    gnm_random_graph,
    parents_of_star,
    random_beta_icm,
    random_dag,
    random_icm,
    skewed_edge_probabilities,
    star_fragment,
)


class TestGnmRandomGraph:
    def test_exact_counts(self):
        graph = gnm_random_graph(10, 35, rng=0)
        assert graph.n_nodes == 10
        assert graph.n_edges == 35

    def test_no_self_loops_or_duplicates(self):
        graph = gnm_random_graph(12, 100, rng=1)
        pairs = [edge.as_pair() for edge in graph.iter_edges()]
        assert len(set(pairs)) == len(pairs)
        assert all(src != dst for src, dst in pairs)

    def test_dense_request_fills_graph(self):
        graph = gnm_random_graph(5, 20, rng=2)  # 20 == 5 * 4, the maximum
        assert graph.n_edges == 20

    def test_too_many_edges_rejected(self):
        with pytest.raises(GraphError, match="n_edges"):
            gnm_random_graph(5, 21, rng=0)

    def test_negative_nodes_rejected(self):
        with pytest.raises(GraphError, match="n_nodes"):
            gnm_random_graph(-1, 0)

    def test_seed_reproducibility(self):
        a = gnm_random_graph(20, 60, rng=42)
        b = gnm_random_graph(20, 60, rng=42)
        assert [e.as_pair() for e in a.iter_edges()] == [
            e.as_pair() for e in b.iter_edges()
        ]

    @given(
        n_nodes=st.integers(min_value=2, max_value=15),
        seed=st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=30, deadline=None)
    def test_property_simple_graph(self, n_nodes, seed):
        rng = np.random.default_rng(seed)
        max_edges = n_nodes * (n_nodes - 1)
        n_edges = int(rng.integers(0, max_edges + 1))
        graph = gnm_random_graph(n_nodes, n_edges, rng=rng)
        pairs = [edge.as_pair() for edge in graph.iter_edges()]
        assert len(pairs) == n_edges
        assert len(set(pairs)) == n_edges
        assert all(src != dst for src, dst in pairs)


class TestRandomDag:
    def test_acyclic_by_construction(self):
        graph = random_dag(10, 0.5, rng=0)
        # every edge goes from a lower to a higher insertion position
        for edge in graph.iter_edges():
            assert graph.node_position(edge.src) < graph.node_position(edge.dst)

    def test_probability_bounds(self):
        with pytest.raises(GraphError):
            random_dag(5, 1.5)

    def test_extremes(self):
        empty = random_dag(6, 0.0, rng=0)
        full = random_dag(6, 1.0, rng=0)
        assert empty.n_edges == 0
        assert full.n_edges == 6 * 5 // 2


class TestRandomModels:
    def test_random_icm_probability_range(self):
        model = random_icm(10, 30, rng=3, probability_range=(0.2, 0.4))
        assert isinstance(model, ICM)
        assert np.all(model.edge_probabilities >= 0.2)
        assert np.all(model.edge_probabilities <= 0.4)

    def test_random_icm_bad_range(self):
        with pytest.raises(GraphError):
            random_icm(5, 5, probability_range=(0.6, 0.4))

    def test_random_beta_icm_parameter_ranges(self):
        model = random_beta_icm(
            10, 30, rng=4, alpha_range=(2.0, 5.0), beta_range=(1.0, 3.0)
        )
        assert isinstance(model, BetaICM)
        assert np.all(model.alphas >= 2.0)
        assert np.all(model.alphas <= 5.0)
        assert np.all(model.betas >= 1.0)
        assert np.all(model.betas <= 3.0)

    def test_random_beta_icm_paper_defaults(self):
        model = random_beta_icm(50, 200, rng=5)
        assert model.n_nodes == 50
        assert model.n_edges == 200
        assert np.all(model.alphas >= 1.0) and np.all(model.alphas <= 20.0)


class TestSkewedProbabilities:
    def test_values_are_probabilities(self):
        values = skewed_edge_probabilities(500, rng=6)
        assert np.all(values >= 0.0) and np.all(values <= 1.0)

    def test_skew_shape(self):
        # 90% near 0.8, 10% near 0.2 => overall mean well above 0.5
        values = skewed_edge_probabilities(5000, rng=7)
        assert 0.65 < values.mean() < 0.85

    def test_all_low_fraction(self):
        values = skewed_edge_probabilities(2000, rng=8, high_fraction=0.0)
        assert values.mean() < 0.35  # all from Beta(2, 8), mean 0.2

    def test_bad_fraction_rejected(self):
        with pytest.raises(ValueError):
            skewed_edge_probabilities(10, high_fraction=1.5)


class TestStarFragment:
    def test_structure(self):
        model = star_fragment([0.1, 0.5, 0.9])
        assert model.n_nodes == 4
        assert model.n_edges == 3
        assert model.graph.in_degree("k") == 3
        assert model.graph.out_degree("k") == 0

    def test_probabilities_in_order(self):
        model = star_fragment([0.1, 0.5, 0.9])
        assert model.probability("u0", "k") == 0.1
        assert model.probability("u2", "k") == 0.9

    def test_parents_of_star(self):
        model = star_fragment([0.3, 0.7])
        assert parents_of_star(model.graph) == ["u0", "u1"]

    def test_invalid_probability(self):
        with pytest.raises(GraphError):
            star_fragment([0.5, 1.2])


class TestPreferentialAttachment:
    def test_structure(self):
        from repro.graph.generators import preferential_attachment_graph

        graph = preferential_attachment_graph(100, 4, rng=0)
        assert graph.n_nodes == 100
        # core seeds out_degree edges, each later node adds out_degree
        assert graph.n_edges == 4 + (100 - 5) * 4
        pairs = [edge.as_pair() for edge in graph.iter_edges()]
        assert len(set(pairs)) == len(pairs)

    def test_heavy_tailed_out_degree(self):
        from repro.graph.generators import preferential_attachment_graph

        graph = preferential_attachment_graph(300, 5, rng=1)
        degrees = sorted(
            (graph.out_degree(node) for node in graph.nodes()), reverse=True
        )
        # a few hubs dominate; the median node attracts nobody
        assert degrees[0] > 20 * max(degrees[len(degrees) // 2], 1)

    def test_parameter_validation(self):
        from repro.errors import GraphError
        from repro.graph.generators import preferential_attachment_graph

        with pytest.raises(GraphError):
            preferential_attachment_graph(5, 0)
        with pytest.raises(GraphError):
            preferential_attachment_graph(3, 3)

    def test_reproducible(self):
        from repro.graph.generators import preferential_attachment_graph

        a = preferential_attachment_graph(50, 3, rng=7)
        b = preferential_attachment_graph(50, 3, rng=7)
        assert [e.as_pair() for e in a.iter_edges()] == [
            e.as_pair() for e in b.iter_edges()
        ]
