"""Unit tests for the DiGraph substrate."""

import pytest

from repro.errors import GraphError
from repro.graph.digraph import DiGraph, Edge


class TestConstruction:
    def test_empty_graph(self):
        graph = DiGraph()
        assert graph.n_nodes == 0
        assert graph.n_edges == 0

    def test_nodes_only(self):
        graph = DiGraph(nodes=["a", "b", "c"])
        assert graph.nodes() == ["a", "b", "c"]
        assert graph.n_edges == 0

    def test_edges_add_unknown_endpoints(self):
        graph = DiGraph(edges=[("a", "b"), ("b", "c")])
        assert graph.n_nodes == 3
        assert graph.n_edges == 2

    def test_add_node_idempotent(self):
        graph = DiGraph()
        graph.add_node("a")
        graph.add_node("a")
        assert graph.n_nodes == 1

    def test_duplicate_edge_rejected(self):
        graph = DiGraph(edges=[("a", "b")])
        with pytest.raises(GraphError, match="duplicate edge"):
            graph.add_edge("a", "b")

    def test_self_loop_rejected_by_default(self):
        graph = DiGraph()
        with pytest.raises(GraphError, match="self loop"):
            graph.add_edge("a", "a")

    def test_self_loop_allowed_when_enabled(self):
        graph = DiGraph(allow_self_loops=True)
        index = graph.add_edge("a", "a")
        assert graph.edge(index).as_pair() == ("a", "a")

    def test_antiparallel_edges_are_distinct(self):
        graph = DiGraph(edges=[("a", "b"), ("b", "a")])
        assert graph.n_edges == 2
        assert graph.edge_index("a", "b") != graph.edge_index("b", "a")


class TestIndexing:
    def test_edge_indices_are_insertion_ordered(self):
        graph = DiGraph()
        assert graph.add_edge("a", "b") == 0
        assert graph.add_edge("b", "c") == 1
        assert graph.add_edge("a", "c") == 2

    def test_edge_lookup_roundtrip(self):
        graph = DiGraph(edges=[("a", "b"), ("b", "c")])
        for edge in graph.edges():
            assert graph.edge_index(edge.src, edge.dst) == edge.index
            assert graph.edge(edge.index) == edge

    def test_unknown_edge_raises(self):
        graph = DiGraph(edges=[("a", "b")])
        with pytest.raises(GraphError, match="no edge"):
            graph.edge_index("b", "a")

    def test_edge_out_of_range_raises(self):
        graph = DiGraph(edges=[("a", "b")])
        with pytest.raises(GraphError, match="no edge with index"):
            graph.edge(5)

    def test_node_position_insertion_order(self):
        graph = DiGraph(nodes=["x", "y"])
        assert graph.node_position("x") == 0
        assert graph.node_position("y") == 1

    def test_unknown_node_raises(self):
        graph = DiGraph()
        with pytest.raises(GraphError, match="unknown node"):
            graph.node_position("ghost")


class TestAdjacency:
    @pytest.fixture
    def diamond(self):
        return DiGraph(edges=[("s", "a"), ("s", "b"), ("a", "t"), ("b", "t")])

    def test_successors(self, diamond):
        assert sorted(diamond.successors("s")) == ["a", "b"]
        assert diamond.successors("t") == []

    def test_predecessors(self, diamond):
        assert sorted(diamond.predecessors("t")) == ["a", "b"]
        assert diamond.predecessors("s") == []

    def test_degrees(self, diamond):
        assert diamond.out_degree("s") == 2
        assert diamond.in_degree("t") == 2
        assert diamond.in_degree("s") == 0

    def test_out_edge_indices_match_edges(self, diamond):
        for index in diamond.out_edge_indices("s"):
            assert diamond.edge(index).src == "s"

    def test_in_edge_indices_match_edges(self, diamond):
        for index in diamond.in_edge_indices("t"):
            assert diamond.edge(index).dst == "t"

    def test_membership(self, diamond):
        assert "s" in diamond
        assert "ghost" not in diamond
        assert diamond.has_edge("s", "a")
        assert not diamond.has_edge("a", "s")


class TestCopyAndReverse:
    def test_copy_is_independent(self):
        graph = DiGraph(edges=[("a", "b")])
        clone = graph.copy()
        clone.add_edge("b", "c")
        assert graph.n_edges == 1
        assert clone.n_edges == 2

    def test_copy_preserves_indices(self):
        graph = DiGraph(edges=[("a", "b"), ("b", "c"), ("a", "c")])
        clone = graph.copy()
        for edge in graph.edges():
            assert clone.edge(edge.index).as_pair() == edge.as_pair()

    def test_reversed_preserves_indices(self):
        graph = DiGraph(edges=[("a", "b"), ("b", "c")])
        rev = graph.reversed()
        assert rev.edge(0).as_pair() == ("b", "a")
        assert rev.edge(1).as_pair() == ("c", "b")
        assert rev.n_nodes == graph.n_nodes

    def test_hashable_arbitrary_nodes(self):
        graph = DiGraph(edges=[((1, 2), "x"), ("x", 3)])
        assert graph.n_nodes == 3
        assert graph.has_edge((1, 2), "x")
