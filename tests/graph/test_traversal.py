"""Unit and property tests for reachability and subgraph extraction."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.digraph import DiGraph
from repro.graph.generators import gnm_random_graph
from repro.graph.traversal import (
    bfs_reachable,
    descendants_within_radius,
    edge_subset_array,
    induced_subgraph,
    radius_subgraph,
    reachable_given_active_edges,
)


@pytest.fixture
def line_graph():
    return DiGraph(edges=[("a", "b"), ("b", "c"), ("c", "d")])


class TestBfsReachable:
    def test_full_line(self, line_graph):
        assert bfs_reachable(line_graph, ["a"]) == {"a", "b", "c", "d"}

    def test_from_middle(self, line_graph):
        assert bfs_reachable(line_graph, ["c"]) == {"c", "d"}

    def test_multiple_sources(self, line_graph):
        assert bfs_reachable(line_graph, ["c", "a"]) == {"a", "b", "c", "d"}

    def test_cycle_terminates(self):
        graph = DiGraph(edges=[("a", "b"), ("b", "a")])
        assert bfs_reachable(graph, ["a"]) == {"a", "b"}

    def test_unknown_source_raises(self, line_graph):
        from repro.errors import GraphError

        with pytest.raises(GraphError):
            bfs_reachable(line_graph, ["ghost"])


class TestReachableGivenActiveEdges:
    def test_all_active_equals_bfs(self, line_graph):
        active = np.ones(line_graph.n_edges, dtype=bool)
        assert reachable_given_active_edges(line_graph, ["a"], active) == {
            "a",
            "b",
            "c",
            "d",
        }

    def test_broken_link_stops_flow(self, line_graph):
        active = np.ones(line_graph.n_edges, dtype=bool)
        active[line_graph.edge_index("b", "c")] = False
        assert reachable_given_active_edges(line_graph, ["a"], active) == {"a", "b"}

    def test_active_edge_beyond_inactive_parent_is_unreachable(self, line_graph):
        # c->d active, but flow dies at b: d must stay unreached.
        active = np.zeros(line_graph.n_edges, dtype=bool)
        active[line_graph.edge_index("c", "d")] = True
        assert reachable_given_active_edges(line_graph, ["a"], active) == {"a"}

    def test_wrong_length_rejected(self, line_graph):
        with pytest.raises(ValueError, match="edge_active"):
            reachable_given_active_edges(line_graph, ["a"], np.ones(2, dtype=bool))

    @given(seed=st.integers(min_value=0, max_value=500))
    @settings(max_examples=25, deadline=None)
    def test_property_subset_of_full_reachability(self, seed):
        rng = np.random.default_rng(seed)
        graph = gnm_random_graph(8, 20, rng=rng)
        active = rng.random(graph.n_edges) < 0.5
        partial = reachable_given_active_edges(graph, ["v0"], active)
        full = bfs_reachable(graph, ["v0"])
        assert partial <= full
        assert "v0" in partial


class TestRadius:
    def test_radius_zero_is_source_only(self, line_graph):
        assert descendants_within_radius(line_graph, "a", 0) == {"a"}

    def test_radius_counts_hops(self, line_graph):
        assert descendants_within_radius(line_graph, "a", 2) == {"a", "b", "c"}

    def test_radius_saturates(self, line_graph):
        assert descendants_within_radius(line_graph, "a", 99) == {
            "a",
            "b",
            "c",
            "d",
        }

    def test_negative_radius_rejected(self, line_graph):
        with pytest.raises(ValueError):
            descendants_within_radius(line_graph, "a", -1)

    def test_radius_subgraph_keeps_internal_edges(self):
        graph = DiGraph(
            edges=[("s", "a"), ("a", "b"), ("b", "c"), ("a", "s"), ("c", "a")]
        )
        sub = radius_subgraph(graph, "s", 2)
        assert set(sub.nodes()) == {"s", "a", "b"}
        assert sub.has_edge("a", "s")  # internal back-edge preserved
        assert not sub.has_edge("b", "c")


class TestInducedSubgraph:
    def test_keeps_only_internal_edges(self):
        graph = DiGraph(edges=[("a", "b"), ("b", "c"), ("a", "c")])
        sub = induced_subgraph(graph, ["a", "b"])
        assert set(sub.nodes()) == {"a", "b"}
        assert sub.n_edges == 1
        assert sub.has_edge("a", "b")

    def test_reindexes_densely(self):
        graph = DiGraph(edges=[("a", "b"), ("b", "c"), ("c", "d")])
        sub = induced_subgraph(graph, ["b", "c", "d"])
        assert [edge.index for edge in sub.iter_edges()] == [0, 1]

    def test_unknown_node_rejected(self):
        from repro.errors import GraphError

        graph = DiGraph(edges=[("a", "b")])
        with pytest.raises(GraphError):
            induced_subgraph(graph, ["a", "ghost"])


class TestEdgeSubsetArray:
    def test_sets_exactly_requested(self):
        graph = DiGraph(edges=[("a", "b"), ("b", "c"), ("c", "d")])
        vector = edge_subset_array(graph, [0, 2])
        assert vector.tolist() == [True, False, True]

    def test_out_of_range_rejected(self):
        graph = DiGraph(edges=[("a", "b")])
        with pytest.raises(ValueError):
            edge_subset_array(graph, [3])
