"""CSR adjacency construction, caching, and reachability kernels."""

import numpy as np
import pytest

from repro.graph.csr import (
    CSRGraph,
    active_adjacency,
    build_csr,
    graph_csr,
    reachable_active,
    reachable_csr,
    reachable_csr_batch,
)
from repro.graph.digraph import DiGraph
from repro.graph.generators import random_icm
from repro.graph.traversal import edge_subset_array, reachable_given_active_edges


@pytest.fixture
def diamond_graph():
    """a -> b, a -> c, b -> d, c -> d, plus an isolated node e."""
    graph = DiGraph(
        edges=[("a", "b"), ("a", "c"), ("b", "d"), ("c", "d")]
    )
    graph.add_node("e")
    return graph


class TestBuildCsr:
    def test_layout_matches_graph(self, diamond_graph):
        csr = build_csr(diamond_graph)
        assert isinstance(csr, CSRGraph)
        assert csr.n_nodes == diamond_graph.n_nodes
        assert csr.n_edges == diamond_graph.n_edges
        assert csr.indptr.dtype == np.int32
        position = diamond_graph.node_position
        for node in diamond_graph.nodes():
            u = position(node)
            slots = range(csr.indptr[u], csr.indptr[u + 1])
            expected = list(diamond_graph.out_edge_indices(node))
            assert [int(csr.edge_ids[s]) for s in slots] == expected
            for slot, edge_index in zip(slots, expected):
                edge = diamond_graph.edge(edge_index)
                assert int(csr.dst_indices[slot]) == position(edge.dst)
                assert int(csr.edge_src_positions[edge_index]) == position(edge.src)
                assert int(csr.edge_dst_positions[edge_index]) == position(edge.dst)

    def test_arrays_are_immutable(self, diamond_graph):
        csr = build_csr(diamond_graph)
        with pytest.raises(ValueError):
            csr.indptr[0] = 5

    def test_cache_reused_until_growth(self, diamond_graph):
        first = diamond_graph.csr()
        assert diamond_graph.csr() is first
        assert graph_csr(diamond_graph) is first
        diamond_graph.add_edge("e", "a")
        rebuilt = diamond_graph.csr()
        assert rebuilt is not first
        assert rebuilt.n_edges == first.n_edges + 1

    def test_scalar_lists_cached_and_consistent(self, diamond_graph):
        csr = diamond_graph.csr()
        lists = csr.scalar_lists()
        assert csr.scalar_lists() is lists
        indptr, dst, eids = lists
        assert indptr == csr.indptr.tolist()
        assert dst == csr.dst_indices.tolist()
        assert eids == csr.edge_ids.tolist()


class TestReachableCsr:
    def test_all_edges_active(self, diamond_graph):
        csr = diamond_graph.csr()
        state = np.ones(csr.n_edges, dtype=bool)
        mask = reachable_csr(csr, (0,), state)
        names = {diamond_graph.nodes()[i] for i in np.flatnonzero(mask)}
        assert names == {"a", "b", "c", "d"}

    def test_respects_inactive_edges(self, diamond_graph):
        csr = diamond_graph.csr()
        # only a -> b and b -> d active: c unreachable
        state = edge_subset_array(diamond_graph, [0, 2])
        mask = reachable_csr(csr, (0,), state)
        names = {diamond_graph.nodes()[i] for i in np.flatnonzero(mask)}
        assert names == {"a", "b", "d"}

    def test_source_always_reached(self, diamond_graph):
        csr = diamond_graph.csr()
        state = np.zeros(csr.n_edges, dtype=bool)
        mask = reachable_csr(csr, (3,), state)
        assert mask.sum() == 1 and mask[3]

    def test_target_early_exit_is_consistent(self, diamond_graph):
        csr = diamond_graph.csr()
        position = diamond_graph.node_position
        state = np.ones(csr.n_edges, dtype=bool)
        full = reachable_csr(csr, (0,), state)
        for node in diamond_graph.nodes():
            early = reachable_csr(csr, (0,), state, target=position(node))
            assert early[position(node)] == full[position(node)]

    def test_target_equal_to_source(self, diamond_graph):
        csr = diamond_graph.csr()
        state = np.zeros(csr.n_edges, dtype=bool)
        mask = reachable_csr(csr, (2,), state, target=2)
        assert mask[2]

    def test_no_sources(self, diamond_graph):
        csr = diamond_graph.csr()
        state = np.ones(csr.n_edges, dtype=bool)
        assert not reachable_csr(csr, (), state).any()

    def test_bad_source_position(self, diamond_graph):
        csr = diamond_graph.csr()
        state = np.ones(csr.n_edges, dtype=bool)
        with pytest.raises(ValueError, match="source positions"):
            reachable_csr(csr, (csr.n_nodes,), state)
        with pytest.raises(ValueError, match="source positions"):
            reachable_csr(csr, (-1,), state)

    def test_bad_state_shape(self, diamond_graph):
        csr = diamond_graph.csr()
        with pytest.raises(ValueError, match="edge_active"):
            reachable_csr(csr, (0,), np.ones(csr.n_edges + 1, dtype=bool))

    def test_escalation_to_vectorized_sweep(self):
        """A cascade larger than the scalar crossover still completes."""
        n = 700  # > _SCALAR_ESCALATION_LIMIT reachable nodes
        graph = DiGraph(edges=[(f"n{i}", f"n{i + 1}") for i in range(n - 1)])
        csr = graph.csr()
        state = np.ones(csr.n_edges, dtype=bool)
        mask = reachable_csr(csr, (0,), state)
        assert mask.all()
        scalar = reachable_given_active_edges(graph, [graph.nodes()[0]], state)
        assert len(scalar) == n


class TestActiveAdjacency:
    def test_matches_per_edge_filtering(self):
        model = random_icm(60, 180, rng=5, probability_range=(0.1, 0.9))
        graph = model.graph
        csr = graph.csr()
        rng = np.random.default_rng(11)
        state = rng.random(csr.n_edges) < 0.4
        indptr_a, dst_a = active_adjacency(csr, state)
        assert indptr_a[-1] == state.sum()
        for source_pos in range(0, csr.n_nodes, 7):
            via_filter = reachable_csr(csr, (source_pos,), state)
            via_active = reachable_active(indptr_a, dst_a, (source_pos,))
            np.testing.assert_array_equal(via_filter, via_active)

    def test_bad_state_shape(self, diamond_graph):
        csr = diamond_graph.csr()
        with pytest.raises(ValueError, match="edge_active"):
            active_adjacency(csr, np.ones(csr.n_edges - 1, dtype=bool))


class TestReachableCsrBatch:
    def test_rows_match_single_source_calls(self):
        model = random_icm(50, 150, rng=6, probability_range=(0.1, 0.9))
        csr = model.graph.csr()
        rng = np.random.default_rng(12)
        state = rng.random(csr.n_edges) < 0.5
        sources = [0, 7, 23, 49]
        batch = reachable_csr_batch(csr, sources, state)
        assert batch.shape == (len(sources), csr.n_nodes)
        for row, source in enumerate(sources):
            np.testing.assert_array_equal(
                batch[row], reachable_csr(csr, (source,), state)
            )
