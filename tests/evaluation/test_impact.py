"""Tests for impact comparison."""

import pytest

from repro.evaluation.impact import ImpactComparison, compare_impact


class TestCompareImpact:
    def test_alignment(self):
        comparison = compare_impact(
            {0: 0.5, 2: 0.5},
            [0, 0, 1, 1],
        )
        assert comparison.support == (0, 1, 2)
        assert comparison.predicted == (0.5, 0.0, 0.5)
        assert comparison.actual == (0.5, 0.5, 0.0)

    def test_means(self):
        comparison = compare_impact({0: 0.5, 2: 0.5}, [1, 1, 1, 1])
        assert comparison.predicted_mean == pytest.approx(1.0)
        assert comparison.actual_mean == pytest.approx(1.0)

    def test_max_support(self):
        comparison = compare_impact({0: 0.9, 5: 0.1}, [2])
        assert comparison.predicted_max == 5
        assert comparison.actual_max == 2

    def test_unnormalised_prediction_normalised(self):
        comparison = compare_impact({0: 2.0, 1: 2.0}, [0])
        assert sum(comparison.predicted) == pytest.approx(1.0)

    def test_total_variation(self):
        same = compare_impact({0: 0.5, 1: 0.5}, [0, 1])
        assert same.total_variation() == pytest.approx(0.0)
        disjoint = compare_impact({0: 1.0}, [5])
        assert disjoint.total_variation() == pytest.approx(1.0)

    def test_negative_actual_rejected(self):
        with pytest.raises(ValueError):
            compare_impact({0: 1.0}, [-1])

    def test_nothing_rejected(self):
        with pytest.raises(ValueError):
            compare_impact({}, [])

    def test_matches_sampler_output_format(self, triangle_icm):
        """Integration: the MCMC impact distribution feeds straight in."""
        from repro.mcmc.chain import ChainSettings
        from repro.mcmc.flow_estimator import estimate_impact_distribution

        predicted = estimate_impact_distribution(
            triangle_icm,
            "v1",
            n_samples=500,
            settings=ChainSettings(burn_in=100, thinning=1),
            rng=0,
        )
        comparison = compare_impact(predicted, [0, 1, 2, 2])
        assert comparison.support[0] == 0
        assert sum(comparison.predicted) == pytest.approx(1.0)
