"""Tests for calibration summaries."""

import numpy as np
import pytest

from repro.evaluation.bucket import PredictionPair, bucket_experiment
from repro.evaluation.calibration import (
    expected_calibration_error,
    fraction_of_bins_within_ci,
    moving_confidence_band,
)


def calibrated_pairs(n, seed=0):
    rng = np.random.default_rng(seed)
    estimates = rng.random(n)
    return [
        PredictionPair(float(p), bool(rng.random() < p)) for p in estimates
    ]


def miscalibrated_pairs(n, seed=0):
    rng = np.random.default_rng(seed)
    estimates = rng.random(n)
    # outcomes happen at a constant 30% regardless of the estimate
    return [
        PredictionPair(float(p), bool(rng.random() < 0.3)) for p in estimates
    ]


class TestFractionWithinCi:
    def test_calibrated_high(self):
        result = bucket_experiment(calibrated_pairs(20_000))
        assert fraction_of_bins_within_ci(result) >= 0.8

    def test_miscalibrated_low(self):
        result = bucket_experiment(miscalibrated_pairs(20_000))
        assert fraction_of_bins_within_ci(result) <= 0.4

    def test_single_pair(self):
        result = bucket_experiment([PredictionPair(0.5, True)])
        value = fraction_of_bins_within_ci(result)
        assert 0.0 <= value <= 1.0


class TestExpectedCalibrationError:
    def test_calibrated_small(self):
        result = bucket_experiment(calibrated_pairs(20_000))
        assert expected_calibration_error(result) < 0.03

    def test_miscalibrated_large(self):
        result = bucket_experiment(miscalibrated_pairs(20_000))
        assert expected_calibration_error(result) > 0.1

    def test_orders_methods(self):
        good = bucket_experiment(calibrated_pairs(5000, seed=1))
        bad = bucket_experiment(miscalibrated_pairs(5000, seed=1))
        assert expected_calibration_error(good) < expected_calibration_error(bad)


class TestMovingBand:
    def test_band_shape(self):
        pairs = calibrated_pairs(2000)
        band = moving_confidence_band(pairs, x_values=np.linspace(0, 1, 11))
        assert len(band) == 11
        for x, low, high in band:
            assert 0.0 <= low <= high <= 1.0

    def test_calibrated_band_tracks_diagonal(self):
        pairs = calibrated_pairs(50_000)
        band = moving_confidence_band(
            pairs, x_values=[0.2, 0.5, 0.8], half_width=0.05
        )
        for x, low, high in band:
            assert low <= x <= high

    def test_empty_window_gives_wide_interval(self):
        pairs = [PredictionPair(0.0, False)]
        band = moving_confidence_band(pairs, x_values=[0.9], half_width=0.01)
        _x, low, high = band[0]
        assert high - low > 0.8  # essentially the uniform prior interval

    def test_half_width_validated(self):
        with pytest.raises(ValueError):
            moving_confidence_band([PredictionPair(0.5, True)], [0.5], half_width=0.0)
