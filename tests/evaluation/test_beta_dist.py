"""The self-contained Beta CDF/quantile vs scipy."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.evaluation.beta_dist import (
    beta_cdf,
    beta_confidence_interval,
    beta_ppf,
    log_beta,
)

scipy_stats = pytest.importorskip("scipy.stats")


class TestCdf:
    def test_bounds(self):
        assert beta_cdf(0.0, 2.0, 3.0) == 0.0
        assert beta_cdf(1.0, 2.0, 3.0) == 1.0

    def test_uniform_case(self):
        # Beta(1,1) is uniform: CDF(x) = x
        for x in (0.1, 0.5, 0.9):
            assert beta_cdf(x, 1.0, 1.0) == pytest.approx(x, abs=1e-12)

    @given(
        x=st.floats(min_value=0.001, max_value=0.999),
        alpha=st.floats(min_value=0.5, max_value=200.0),
        beta=st.floats(min_value=0.5, max_value=200.0),
    )
    @settings(max_examples=200, deadline=None)
    def test_property_matches_scipy(self, x, alpha, beta):
        ours = beta_cdf(x, alpha, beta)
        reference = scipy_stats.beta.cdf(x, alpha, beta)
        assert ours == pytest.approx(reference, abs=1e-9)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            beta_cdf(0.5, 0.0, 1.0)


class TestPpf:
    @given(
        q=st.floats(min_value=0.01, max_value=0.99),
        alpha=st.floats(min_value=0.5, max_value=100.0),
        beta=st.floats(min_value=0.5, max_value=100.0),
    )
    @settings(max_examples=100, deadline=None)
    def test_property_matches_scipy(self, q, alpha, beta):
        ours = beta_ppf(q, alpha, beta)
        reference = scipy_stats.beta.ppf(q, alpha, beta)
        assert ours == pytest.approx(reference, abs=1e-7)

    def test_inverse_of_cdf(self):
        for q in (0.025, 0.5, 0.975):
            x = beta_ppf(q, 5.0, 3.0)
            assert beta_cdf(x, 5.0, 3.0) == pytest.approx(q, abs=1e-9)

    def test_bounds(self):
        assert beta_ppf(0.0, 2.0, 2.0) == 0.0
        assert beta_ppf(1.0, 2.0, 2.0) == 1.0

    def test_invalid_quantile(self):
        with pytest.raises(ValueError):
            beta_ppf(1.5, 1.0, 1.0)


class TestConfidenceInterval:
    def test_central_interval_mass(self):
        low, high = beta_confidence_interval(10.0, 20.0, level=0.95)
        assert beta_cdf(high, 10.0, 20.0) - beta_cdf(low, 10.0, 20.0) == pytest.approx(
            0.95, abs=1e-9
        )

    def test_contains_mean_for_moderate_parameters(self):
        low, high = beta_confidence_interval(8.0, 4.0)
        assert low < 8.0 / 12.0 < high

    def test_level_validated(self):
        with pytest.raises(ValueError):
            beta_confidence_interval(1.0, 1.0, level=1.0)


class TestLogBeta:
    def test_known_value(self):
        # B(1,1) = 1
        assert log_beta(1.0, 1.0) == pytest.approx(0.0)
        # B(2,3) = 1/12
        assert log_beta(2.0, 3.0) == pytest.approx(np.log(1.0 / 12.0))
