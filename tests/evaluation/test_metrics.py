"""Tests for RMSE, Brier score, and normalised likelihood."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.evaluation.bucket import PredictionPair
from repro.evaluation.metrics import (
    brier_score,
    middle_values,
    normalised_likelihood,
    rmse,
)


class TestRmse:
    def test_zero_for_identical(self):
        assert rmse([0.1, 0.5], [0.1, 0.5]) == 0.0

    def test_known_value(self):
        assert rmse([0.0, 0.0], [0.3, 0.4]) == pytest.approx(
            math.sqrt((0.09 + 0.16) / 2)
        )

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            rmse([0.1], [0.1, 0.2])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            rmse([], [])

    @given(
        values=st.lists(
            st.floats(min_value=0.0, max_value=1.0), min_size=1, max_size=50
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_property_nonnegative_and_bounded(self, values):
        zeros = [0.0] * len(values)
        result = rmse(values, zeros)
        assert 0.0 <= result <= 1.0


class TestBrier:
    def test_perfect_predictions(self):
        pairs = [PredictionPair(1.0, True), PredictionPair(0.0, False)]
        assert brier_score(pairs) == 0.0

    def test_worst_predictions(self):
        pairs = [PredictionPair(1.0, False), PredictionPair(0.0, True)]
        assert brier_score(pairs) == 1.0

    def test_known_value(self):
        pairs = [PredictionPair(0.7, True), PredictionPair(0.2, False)]
        assert brier_score(pairs) == pytest.approx((0.09 + 0.04) / 2)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            brier_score([])

    def test_uninformative_predictor_scores_quarter(self):
        rng = np.random.default_rng(0)
        pairs = [PredictionPair(0.5, bool(rng.random() < 0.5)) for _ in range(100)]
        assert brier_score(pairs) == pytest.approx(0.25)


class TestNormalisedLikelihood:
    def test_perfect_predictions_near_one(self):
        pairs = [PredictionPair(1.0, True)] * 10
        assert normalised_likelihood(pairs) == pytest.approx(1.0, abs=0.01)

    def test_wrong_certain_prediction_clamped_not_zero(self):
        """The paper's fix: a 0-probability prediction that happens anyway
        must not collapse the geometric mean to zero."""
        pairs = [PredictionPair(0.0, True)] + [PredictionPair(1.0, True)] * 9
        value = normalised_likelihood(pairs, clamp=1e-3)
        assert value > 0.0

    def test_geometric_mean_formula(self):
        pairs = [PredictionPair(0.8, True), PredictionPair(0.4, False)]
        expected = math.sqrt(0.8 * 0.6)
        assert normalised_likelihood(pairs) == pytest.approx(expected)

    def test_clamp_validated(self):
        with pytest.raises(ValueError):
            normalised_likelihood([PredictionPair(0.5, True)], clamp=0.6)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            normalised_likelihood([])

    def test_better_calibration_scores_higher(self):
        rng = np.random.default_rng(1)
        outcomes = rng.random(2000) < 0.7
        good = [PredictionPair(0.7, bool(z)) for z in outcomes]
        bad = [PredictionPair(0.2, bool(z)) for z in outcomes]
        assert normalised_likelihood(good) > normalised_likelihood(bad)


class TestMiddleValues:
    def test_drops_exact_zero_and_one(self):
        pairs = [
            PredictionPair(0.0, False),
            PredictionPair(0.5, True),
            PredictionPair(1.0, True),
        ]
        remaining = middle_values(pairs)
        assert len(remaining) == 1
        assert remaining[0].estimate == 0.5

    def test_keeps_near_extremes(self):
        pairs = [PredictionPair(1e-9, False), PredictionPair(1 - 1e-9, True)]
        assert len(middle_values(pairs)) == 2

    def test_table3_pattern_scores_degrade_on_middle_values(self):
        """Removing near-certain predictions lowers apparent performance
        (the paper's observation about its Table III)."""
        rng = np.random.default_rng(2)
        certain = [PredictionPair(0.0, False) for _ in range(900)]
        noisy = [
            PredictionPair(0.5, bool(rng.random() < 0.5)) for _ in range(100)
        ]
        everything = certain + noisy
        all_score = normalised_likelihood(everything)
        middle_score = normalised_likelihood(middle_values(everything))
        assert middle_score < all_score
