"""Tests for ROC-AUC, average precision, and precision@k."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.evaluation.bucket import PredictionPair
from repro.evaluation.ranking import average_precision, precision_at_k, roc_auc

scipy_stats = pytest.importorskip("scipy.stats")


def pairs_from(estimates, outcomes):
    return [
        PredictionPair(float(p), bool(z)) for p, z in zip(estimates, outcomes)
    ]


class TestRocAuc:
    def test_perfect_ranking(self):
        pairs = pairs_from([0.9, 0.8, 0.2, 0.1], [1, 1, 0, 0])
        assert roc_auc(pairs) == 1.0

    def test_inverted_ranking(self):
        pairs = pairs_from([0.1, 0.2, 0.8, 0.9], [1, 1, 0, 0])
        assert roc_auc(pairs) == 0.0

    def test_all_tied_is_half(self):
        pairs = pairs_from([0.5, 0.5, 0.5, 0.5], [1, 0, 1, 0])
        assert roc_auc(pairs) == 0.5

    def test_random_ranking_near_half(self):
        rng = np.random.default_rng(0)
        pairs = pairs_from(rng.random(4000), rng.random(4000) < 0.4)
        assert roc_auc(pairs) == pytest.approx(0.5, abs=0.03)

    def test_needs_both_classes(self):
        with pytest.raises(ValueError):
            roc_auc(pairs_from([0.5, 0.6], [1, 1]))

    @given(seed=st.integers(min_value=0, max_value=200))
    @settings(max_examples=30, deadline=None)
    def test_property_matches_mannwhitney(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(10, 80))
        estimates = np.round(rng.random(n), 1)  # force ties
        outcomes = rng.random(n) < 0.5
        if outcomes.all() or not outcomes.any():
            return
        pairs = pairs_from(estimates, outcomes)
        ours = roc_auc(pairs)
        u, _p = scipy_stats.mannwhitneyu(
            estimates[outcomes], estimates[~outcomes]
        )
        reference = u / (outcomes.sum() * (~outcomes).sum())
        assert ours == pytest.approx(reference, abs=1e-9)


class TestAveragePrecision:
    def test_perfect_ranking(self):
        pairs = pairs_from([0.9, 0.8, 0.2, 0.1], [1, 1, 0, 0])
        assert average_precision(pairs) == 1.0

    def test_known_value(self):
        # ranked: (0.9, +), (0.8, -), (0.7, +) -> precision 1/1 and 2/3
        pairs = pairs_from([0.9, 0.8, 0.7], [1, 0, 1])
        assert average_precision(pairs) == pytest.approx((1.0 + 2.0 / 3.0) / 2)

    def test_needs_a_positive(self):
        with pytest.raises(ValueError):
            average_precision(pairs_from([0.5], [0]))

    def test_bounded(self):
        rng = np.random.default_rng(1)
        pairs = pairs_from(rng.random(300), rng.random(300) < 0.3)
        assert 0.0 < average_precision(pairs) <= 1.0


class TestPrecisionAtK:
    def test_top_k_counted(self):
        pairs = pairs_from([0.9, 0.8, 0.7, 0.1], [1, 0, 1, 1])
        assert precision_at_k(pairs, 2) == 0.5
        assert precision_at_k(pairs, 3) == pytest.approx(2.0 / 3.0)

    def test_k_larger_than_pairs(self):
        pairs = pairs_from([0.9], [1])
        assert precision_at_k(pairs, 10) == 1.0

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            precision_at_k(pairs_from([0.5], [1]), 0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            precision_at_k([], 3)


class TestOnFlowPredictions:
    def test_calibrated_model_ranks_well(self):
        """Estimates drawn from the true probabilities rank positives high."""
        rng = np.random.default_rng(2)
        probabilities = rng.random(3000)
        outcomes = rng.random(3000) < probabilities
        pairs = pairs_from(probabilities, outcomes)
        assert roc_auc(pairs) > 0.7
