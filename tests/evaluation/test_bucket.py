"""Tests for the bucket experiment."""

import numpy as np
import pytest

from repro.evaluation.bucket import Bin, BucketResult, PredictionPair, bucket_experiment


def calibrated_pairs(n, rng):
    """Pairs whose outcomes are drawn at exactly the estimated probability."""
    estimates = rng.random(n)
    outcomes = rng.random(n) < estimates
    return [PredictionPair(float(p), bool(z)) for p, z in zip(estimates, outcomes)]


class TestPredictionPair:
    def test_bounds_enforced(self):
        with pytest.raises(ValueError):
            PredictionPair(1.5, True)
        with pytest.raises(ValueError):
            PredictionPair(-0.1, False)

    def test_endpoints_allowed(self):
        PredictionPair(0.0, False)
        PredictionPair(1.0, True)


class TestBinning:
    def test_width_scheme_boundaries(self, rng):
        result = bucket_experiment(calibrated_pairs(1000, rng), n_bins=10)
        assert len(result.bins) == 10
        for j, bin_ in enumerate(result.bins):
            assert bin_.lower == pytest.approx(j / 10)
            assert bin_.upper == pytest.approx((j + 1) / 10)

    def test_every_pair_assigned_once(self, rng):
        pairs = calibrated_pairs(500, rng)
        result = bucket_experiment(pairs, n_bins=30)
        assert sum(bin_.volume for bin_ in result.bins) == 500

    def test_estimate_one_lands_in_last_bin(self):
        result = bucket_experiment([PredictionPair(1.0, True)], n_bins=10)
        assert result.bins[-1].volume == 1

    def test_count_scheme_roughly_equal_volumes(self, rng):
        pairs = calibrated_pairs(3000, rng)
        result = bucket_experiment(pairs, n_bins=10, scheme="count")
        volumes = [bin_.volume for bin_ in result.bins]
        assert max(volumes) - min(volumes) < 0.2 * 3000

    def test_unknown_scheme_rejected(self, rng):
        with pytest.raises(ValueError):
            bucket_experiment(calibrated_pairs(10, rng), scheme="banana")

    def test_empty_pairs_rejected(self):
        with pytest.raises(ValueError):
            bucket_experiment([])


class TestBetaParameters:
    def test_paper_formula(self):
        """alpha = 1 + sum(z); beta = |bin| - alpha + 2."""
        pairs = [
            PredictionPair(0.05, True),
            PredictionPair(0.06, False),
            PredictionPair(0.07, False),
        ]
        result = bucket_experiment(pairs, n_bins=10)
        bin0 = result.bins[0]
        assert bin0.alpha == 2.0  # 1 + 1 positive
        assert bin0.beta == 3.0  # 3 - 2 + 2
        assert bin0.positives == 1
        assert bin0.volume == 3

    def test_empty_bin_is_uniform_beta(self, rng):
        result = bucket_experiment([PredictionPair(0.99, True)], n_bins=10)
        empty = result.bins[0]
        # paper formula at volume 0: alpha = 1, beta = 0 - 1 + 2 = 1 (uniform)
        assert empty.alpha == 1.0
        assert empty.beta == 1.0
        assert np.isnan(empty.mean_estimate)
        assert not empty.mean_within_ci

    def test_ci_orders(self, rng):
        result = bucket_experiment(calibrated_pairs(2000, rng))
        for bin_ in result.occupied_bins:
            assert bin_.ci_low <= bin_.ci_high


class TestCalibrationBehaviour:
    def test_calibrated_estimator_mostly_within_ci(self):
        rng = np.random.default_rng(0)
        pairs = calibrated_pairs(30_000, rng)
        result = bucket_experiment(pairs, n_bins=30)
        occupied = result.occupied_bins
        within = sum(1 for bin_ in occupied if bin_.mean_within_ci)
        assert within / len(occupied) >= 0.8

    def test_miscalibrated_estimator_flagged(self):
        """Estimates of 0.9 for events that happen 10% of the time."""
        rng = np.random.default_rng(1)
        pairs = [
            PredictionPair(0.9, bool(rng.random() < 0.1)) for _ in range(2000)
        ]
        result = bucket_experiment(pairs, n_bins=10)
        hot_bin = result.bins[9]
        assert not hot_bin.mean_within_ci
        assert hot_bin.empirical_mean < 0.2

    def test_bin_helpers(self, rng):
        result = bucket_experiment(calibrated_pairs(100, rng), n_bins=4)
        bin_ = result.bins[0]
        assert bin_.center == pytest.approx(0.125)
        assert result.n_pairs == 100
