"""Tests for tweet-corpus persistence."""

import pytest

from repro.errors import EvidenceError
from repro.twitter.entities import Tweet, TwitterDataset
from repro.twitter.storage import load_dataset, save_dataset


class TestRoundTrip:
    def test_exact_round_trip(self, tmp_path):
        dataset = TwitterDataset(
            [
                Tweet(0, "alice", 0, "hello #world"),
                Tweet(5, "bob", 3, "RT @alice: hello #world"),
                Tweet(2, "carol", 1, "unicode ✓ and http://t.co/x"),
            ]
        )
        path = tmp_path / "corpus.jsonl"
        save_dataset(dataset, path)
        loaded = load_dataset(path)
        assert len(loaded) == 3
        assert [t.tweet_id for t in loaded] == [0, 5, 2]  # order preserved
        assert loaded.get(2).text == "unicode ✓ and http://t.co/x"

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "corpus.jsonl"
        path.write_text(
            '{"tweet_id": 0, "author": "a", "time": 0, "text": "x"}\n\n'
        )
        assert len(load_dataset(path)) == 1

    def test_malformed_line_reported_with_number(self, tmp_path):
        path = tmp_path / "corpus.jsonl"
        path.write_text(
            '{"tweet_id": 0, "author": "a", "time": 0, "text": "x"}\n'
            '{"author": "missing id"}\n'
        )
        with pytest.raises(EvidenceError, match="line 2"):
            load_dataset(path)

    def test_invalid_json_reported(self, tmp_path):
        path = tmp_path / "corpus.jsonl"
        path.write_text("not json at all\n")
        with pytest.raises(EvidenceError, match="line 1"):
            load_dataset(path)

    def test_pipeline_runs_on_loaded_corpus(self, tmp_path):
        """A saved synthetic corpus feeds the preprocessing unchanged."""
        from repro.twitter.preprocess import build_retweet_evidence
        from repro.twitter.simulator import SyntheticTwitter, TwitterConfig

        service = SyntheticTwitter(
            TwitterConfig(n_users=15, n_follow_edges=60), rng=0
        )
        dataset, _records = service.generate(60, rng=1)
        path = tmp_path / "corpus.jsonl"
        save_dataset(dataset, path)
        loaded = load_dataset(path)
        original = build_retweet_evidence(dataset)
        reloaded = build_retweet_evidence(loaded)
        assert reloaded.n_objects == original.n_objects
        assert len(reloaded.evidence) == len(original.evidence)
