"""Tests for hashtag/URL activation-trace extraction."""

import pytest

from repro.graph.digraph import DiGraph
from repro.twitter.entities import Tweet, TwitterDataset
from repro.twitter.simulator import SyntheticTwitter, TwitterConfig
from repro.twitter.unattributed import (
    OMNIPOTENT_USER,
    add_omnipotent_user,
    build_tag_evidence,
    first_mention_times,
)


@pytest.fixture
def graph():
    return DiGraph(edges=[("alice", "bob"), ("bob", "carol")])


@pytest.fixture
def dataset():
    return TwitterDataset(
        [
            Tweet(0, "alice", 0, "launch day #go http://t.co/aaa"),
            Tweet(1, "bob", 2, "nice one #go"),
            Tweet(2, "bob", 5, "again #go"),  # second mention ignored
            Tweet(3, "carol", 7, "link http://t.co/aaa"),
        ]
    )


class TestFirstMentionTimes:
    def test_hashtags(self, dataset):
        mentions = first_mention_times(dataset, "hashtag")
        assert mentions == {"#go": {"alice": 0, "bob": 2}}

    def test_urls(self, dataset):
        mentions = first_mention_times(dataset, "url")
        assert mentions == {"http://t.co/aaa": {"alice": 0, "carol": 7}}

    def test_bad_kind(self, dataset):
        with pytest.raises(ValueError):
            first_mention_times(dataset, "emoji")


class TestOmnipotentUser:
    def test_edges_to_every_node(self, graph):
        augmented = add_omnipotent_user(graph)
        assert OMNIPOTENT_USER in augmented
        for node in graph.nodes():
            assert augmented.has_edge(OMNIPOTENT_USER, node)
        # original edges preserved
        assert augmented.has_edge("alice", "bob")

    def test_original_untouched(self, graph):
        add_omnipotent_user(graph)
        assert OMNIPOTENT_USER not in graph


class TestBuildTagEvidence:
    def test_traces_sourced_at_omnipotent(self, dataset, graph):
        result = build_tag_evidence(dataset, graph, "hashtag")
        assert result.tags == ("#go",)
        trace = result.evidence[0]
        assert trace.sources == frozenset({OMNIPOTENT_USER})
        assert trace.time_of(OMNIPOTENT_USER) < trace.time_of("alice")
        assert trace.time_of("bob") == 2

    def test_without_omnipotent(self, dataset, graph):
        result = build_tag_evidence(
            dataset, graph, "hashtag", use_omnipotent_user=False
        )
        trace = result.evidence[0]
        assert trace.sources == frozenset({"alice"})
        assert OMNIPOTENT_USER not in result.graph

    def test_min_adopters_filter(self, dataset, graph):
        result = build_tag_evidence(dataset, graph, "url", min_adopters=3)
        assert result.tags == ()

    def test_unknown_handles_excluded(self, graph):
        dataset = TwitterDataset(
            [
                Tweet(0, "alice", 0, "#x"),
                Tweet(1, "stranger", 1, "#x"),
            ]
        )
        result = build_tag_evidence(dataset, graph, "hashtag")
        trace = result.evidence[0]
        assert "stranger" not in trace.activation_times

    def test_evidence_validates_against_returned_graph(self, dataset, graph):
        result = build_tag_evidence(dataset, graph, "hashtag")
        result.evidence.validate_against(result.graph)  # no raise


class TestAgainstSimulator:
    def test_url_traces_match_ground_truth_cascades(self):
        config = TwitterConfig(
            n_users=30,
            n_follow_edges=150,
            message_kind_weights=(0.0, 0.0, 1.0),
        )
        service = SyntheticTwitter(config, rng=20)
        dataset, records = service.generate(100, rng=21)
        result = build_tag_evidence(dataset, service.influence_graph, "url")
        by_key = {record.key: record for record in records}
        checked = 0
        for tag, trace in zip(result.tags, result.evidence):
            record = by_key[tag]
            expected = {str(node) for node in record.cascade.active_nodes}
            observed = set(trace.activation_times) - {OMNIPOTENT_USER}
            assert observed == expected
            checked += 1
        assert checked > 0
