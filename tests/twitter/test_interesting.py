"""Tests for interesting-user selection."""

import pytest

from repro.twitter.entities import Tweet, TwitterDataset
from repro.twitter.interesting import select_interesting_users, user_activity


@pytest.fixture
def dataset():
    return TwitterDataset(
        [
            Tweet(0, "star", 0, "original one"),
            Tweet(1, "star", 1, "original two"),
            Tweet(2, "fan1", 2, "RT @star: original one"),
            Tweet(3, "fan2", 3, "RT @star: original one"),
            Tweet(4, "fan1", 4, "RT @star: original two"),
            Tweet(5, "quiet", 5, "nobody reads this"),
        ]
    )


class TestUserActivity:
    def test_counts(self, dataset):
        activity = user_activity(dataset)
        assert activity["star"].n_tweets == 2
        assert activity["star"].n_retweets_received == 3
        assert activity["fan1"].n_tweets == 2
        assert activity["fan1"].n_retweets_received == 0
        assert activity["quiet"].n_retweets_received == 0

    def test_nested_chain_credits_outermost(self):
        dataset = TwitterDataset(
            [Tweet(0, "c", 2, "RT @b: RT @a: origin")]
        )
        activity = user_activity(dataset)
        assert activity["b"].n_retweets_received == 1
        # 'a' neither tweeted in the data nor received this retweet directly
        assert "a" not in activity


class TestSelection:
    def test_most_retweeted_first(self, dataset):
        assert select_interesting_users(dataset, top_n=1) == ["star"]

    def test_top_n_respected(self, dataset):
        assert len(select_interesting_users(dataset, top_n=2)) == 2

    def test_min_tweets_filter(self, dataset):
        # ghost never tweeted but got a retweet mention; excluded by filter
        users = select_interesting_users(dataset, top_n=10, min_tweets=1)
        assert "star" in users
        assert all(user_activity(dataset)[u].n_tweets >= 1 for u in users)

    def test_invalid_top_n(self, dataset):
        with pytest.raises(ValueError):
            select_interesting_users(dataset, top_n=0)
