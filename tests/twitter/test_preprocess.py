"""Tests for retweet-chain reconstruction into attributed evidence."""

import pytest

from repro.twitter.entities import Tweet, TwitterDataset
from repro.twitter.preprocess import build_retweet_evidence
from repro.twitter.simulator import SyntheticTwitter, TwitterConfig


class TestHandBuiltChains:
    def test_single_retweet(self):
        dataset = TwitterDataset(
            [
                Tweet(0, "alice", 0, "hello world"),
                Tweet(1, "bob", 1, "RT @alice: hello world"),
            ]
        )
        result = build_retweet_evidence(dataset)
        assert result.n_objects == 1
        assert len(result.evidence) == 1
        observation = result.evidence[0]
        assert observation.sources == frozenset({"alice"})
        assert observation.active_nodes == frozenset({"alice", "bob"})
        assert observation.active_edges == frozenset({("alice", "bob")})
        assert result.graph.has_edge("alice", "bob")

    def test_nested_chain_builds_path(self):
        dataset = TwitterDataset(
            [
                Tweet(0, "a", 0, "origin"),
                Tweet(1, "b", 1, "RT @a: origin"),
                Tweet(2, "c", 2, "RT @b: RT @a: origin"),
            ]
        )
        result = build_retweet_evidence(dataset)
        observation = result.evidence[0]
        assert observation.active_edges == frozenset({("a", "b"), ("b", "c")})
        assert result.n_recovered == 0

    def test_missing_original_recovered(self):
        dataset = TwitterDataset(
            [Tweet(0, "b", 1, "RT @a: lost origin")]
        )
        result = build_retweet_evidence(dataset)
        observation = result.evidence[0]
        assert "a" in observation.active_nodes
        assert observation.sources == frozenset({"a"})
        assert result.n_recovered == 1

    def test_missing_intermediate_recovered(self):
        dataset = TwitterDataset(
            [
                Tweet(0, "a", 0, "origin"),
                Tweet(1, "c", 2, "RT @b: RT @a: origin"),
            ]
        )
        result = build_retweet_evidence(dataset)
        observation = result.evidence[0]
        assert observation.active_nodes == frozenset({"a", "b", "c"})
        assert ("a", "b") in observation.active_edges
        assert result.n_recovered == 1  # b's own retweet was never seen

    def test_two_branches_same_origin_merge(self):
        dataset = TwitterDataset(
            [
                Tweet(0, "a", 0, "origin"),
                Tweet(1, "b", 1, "RT @a: origin"),
                Tweet(2, "c", 1, "RT @a: origin"),
            ]
        )
        result = build_retweet_evidence(dataset)
        assert result.n_objects == 1
        observation = result.evidence[0]
        assert observation.active_edges == frozenset(
            {("a", "b"), ("a", "c")}
        )

    def test_distinct_bodies_are_distinct_objects(self):
        dataset = TwitterDataset(
            [
                Tweet(0, "a", 0, "first"),
                Tweet(1, "a", 1, "second"),
                Tweet(2, "b", 2, "RT @a: first"),
            ]
        )
        result = build_retweet_evidence(dataset)
        assert result.n_objects == 2
        assert len(result.evidence) == 1  # only 'first' had flow

    def test_flowless_objects_optional(self):
        dataset = TwitterDataset([Tweet(0, "a", 0, "lonely")])
        without = build_retweet_evidence(dataset)
        with_flowless = build_retweet_evidence(
            dataset, include_flowless_objects=True
        )
        assert len(without.evidence) == 0
        assert len(with_flowless.evidence) == 1

    def test_isolated_posters_in_graph(self):
        dataset = TwitterDataset([Tweet(0, "loner", 0, "hi")])
        result = build_retweet_evidence(dataset)
        assert "loner" in result.graph


class TestAgainstSimulatorGroundTruth:
    @pytest.fixture(scope="class")
    def pipeline(self):
        config = TwitterConfig(
            n_users=40,
            n_follow_edges=200,
            message_kind_weights=(1.0, 0.0, 0.0),
        )
        service = SyntheticTwitter(config, rng=10)
        dataset, records = service.generate(400, rng=11)
        return service, records, build_retweet_evidence(dataset)

    def test_every_inferred_edge_is_a_true_influence_edge(self, pipeline):
        service, _records, result = pipeline
        for edge in result.graph.iter_edges():
            assert service.influence_graph.has_edge(edge.src, edge.dst)

    def test_observations_match_cascades(self, pipeline):
        _service, records, result = pipeline
        spreading = {
            record.key: record
            for record in records
            if record.cascade.impact > 0
        }
        matched = 0
        for observation in result.evidence:
            (source,) = observation.sources
            for record in spreading.values():
                if record.author == source and observation.active_nodes == {
                    str(node) for node in record.cascade.active_nodes
                }:
                    matched += 1
                    break
        assert matched >= 0.9 * len(result.evidence)

    def test_recovery_with_dropped_originals(self):
        config = TwitterConfig(
            n_users=30,
            n_follow_edges=150,
            message_kind_weights=(1.0, 0.0, 0.0),
            drop_original_probability=0.5,
        )
        service = SyntheticTwitter(config, rng=12)
        dataset, records = service.generate(300, rng=13)
        result = build_retweet_evidence(dataset)
        assert result.n_recovered > 0
        # recovered sources still appear as observation sources
        spreading = [r for r in records if r.cascade.impact > 0]
        sources_seen = {next(iter(o.sources)) for o in result.evidence}
        assert {r.author for r in spreading} <= sources_seen
