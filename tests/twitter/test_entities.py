"""Tests for Twitter entities."""

import pytest

from repro.errors import EvidenceError
from repro.twitter.entities import Tweet, TwitterDataset, User


class TestUser:
    def test_valid_handles(self):
        assert User("alice").handle == "alice"
        assert User("user_123").handle == "user_123"

    def test_invalid_handles(self):
        with pytest.raises(EvidenceError):
            User("")
        with pytest.raises(EvidenceError):
            User("bad handle")


class TestTweet:
    def test_fields(self):
        tweet = Tweet(1, "alice", 100, "hello")
        assert tweet.tweet_id == 1
        assert tweet.author == "alice"

    def test_negative_id_rejected(self):
        with pytest.raises(EvidenceError):
            Tweet(-1, "alice", 0, "x")


class TestDataset:
    def test_add_and_lookup(self):
        dataset = TwitterDataset([Tweet(0, "a", 0, "x")])
        dataset.add(Tweet(1, "b", 5, "y"))
        assert len(dataset) == 2
        assert dataset.get(1).author == "b"
        assert 0 in dataset
        assert 7 not in dataset

    def test_duplicate_id_rejected(self):
        dataset = TwitterDataset([Tweet(0, "a", 0, "x")])
        with pytest.raises(EvidenceError, match="duplicate"):
            dataset.add(Tweet(0, "b", 1, "y"))

    def test_by_time_sorted(self):
        dataset = TwitterDataset(
            [Tweet(0, "a", 5, "x"), Tweet(1, "b", 1, "y"), Tweet(2, "c", 5, "z")]
        )
        ordered = dataset.by_time()
        assert [t.tweet_id for t in ordered] == [1, 0, 2]

    def test_authors_first_appearance_order(self):
        dataset = TwitterDataset(
            [Tweet(0, "b", 0, "x"), Tweet(1, "a", 1, "y"), Tweet(2, "b", 2, "z")]
        )
        assert dataset.authors() == ["b", "a"]

    def test_by_author(self):
        dataset = TwitterDataset(
            [Tweet(0, "a", 0, "x"), Tweet(1, "a", 1, "y"), Tweet(2, "b", 2, "z")]
        )
        grouped = dataset.by_author()
        assert len(grouped["a"]) == 2
        assert len(grouped["b"]) == 1

    def test_next_tweet_id(self):
        assert TwitterDataset().next_tweet_id() == 0
        dataset = TwitterDataset([Tweet(7, "a", 0, "x")])
        assert dataset.next_tweet_id() == 8
