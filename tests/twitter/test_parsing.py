"""Tests for tweet-syntax parsing."""

import pytest

from repro.twitter.parsing import (
    extract_hashtags,
    extract_mentions,
    extract_urls,
    is_retweet,
    make_retweet_text,
    parse_retweet_chain,
    strip_retweet_prefixes,
)


class TestExtractors:
    def test_mentions(self):
        assert extract_mentions("hi @alice and @bob_2") == ["alice", "bob_2"]

    def test_no_mentions(self):
        assert extract_mentions("plain text") == []

    def test_hashtags(self):
        assert extract_hashtags("going to #ICDE with #friends") == [
            "ICDE",
            "friends",
        ]

    def test_urls(self):
        text = "read http://t.co/abc123 and https://example.com/x?y=1"
        assert extract_urls(text) == [
            "http://t.co/abc123",
            "https://example.com/x?y=1",
        ]

    def test_hash_inside_word_not_matched(self):
        assert extract_hashtags("a#b") == ["b"]  # '#' always starts a tag
        assert extract_hashtags("100% sure") == []


class TestRetweetChain:
    def test_plain_tweet(self):
        chain, body = parse_retweet_chain("just some words")
        assert chain == []
        assert body == "just some words"

    def test_single_retweet(self):
        chain, body = parse_retweet_chain("RT @alice: hello world")
        assert chain == ["alice"]
        assert body == "hello world"

    def test_nested_retweet(self):
        chain, body = parse_retweet_chain("RT @a: RT @b: RT @c: origin")
        assert chain == ["a", "b", "c"]
        assert body == "origin"

    def test_rt_mid_text_not_a_prefix(self):
        chain, body = parse_retweet_chain("I love RT @alice: style")
        assert chain == []

    def test_is_retweet(self):
        assert is_retweet("RT @x: y")
        assert not is_retweet("no retweet here")


class TestComposition:
    def test_make_and_parse_roundtrip(self):
        original = "breaking news #wow"
        retweet = make_retweet_text("alice", original)
        assert retweet == "RT @alice: breaking news #wow"
        chain, body = parse_retweet_chain(retweet)
        assert chain == ["alice"]
        assert body == original

    def test_nested_composition(self):
        level1 = make_retweet_text("bob", "origin")
        level2 = make_retweet_text("alice", level1)
        chain, body = parse_retweet_chain(level2)
        assert chain == ["alice", "bob"]
        assert body == "origin"

    def test_strip_prefixes(self):
        assert strip_retweet_prefixes("RT @a: RT @b: core") == "core"

    def test_hashtags_survive_retweeting(self):
        retweet = make_retweet_text("alice", "news #tag1 http://t.co/x")
        assert extract_hashtags(retweet) == ["tag1"]
        assert extract_urls(retweet) == ["http://t.co/x"]
