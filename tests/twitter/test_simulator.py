"""Tests for the synthetic Twitter generative service."""

import numpy as np
import pytest

from repro.errors import EvidenceError
from repro.twitter.parsing import (
    extract_hashtags,
    extract_urls,
    is_retweet,
    parse_retweet_chain,
)
from repro.twitter.simulator import MessageRecord, SyntheticTwitter, TwitterConfig


@pytest.fixture(scope="module")
def service():
    config = TwitterConfig(n_users=40, n_follow_edges=200)
    return SyntheticTwitter(config, rng=0)


@pytest.fixture(scope="module")
def corpus(service):
    return service.generate(300, rng=1)


class TestConfig:
    def test_defaults_valid(self):
        TwitterConfig()

    def test_too_few_users(self):
        with pytest.raises(EvidenceError):
            TwitterConfig(n_users=1)

    def test_bad_weights(self):
        with pytest.raises(EvidenceError):
            TwitterConfig(message_kind_weights=(0.0, 0.0, 0.0))

    def test_bad_drop_probability(self):
        with pytest.raises(EvidenceError):
            TwitterConfig(drop_original_probability=1.5)


class TestStructure:
    def test_three_hidden_models_share_graph(self, service):
        assert service.retweet_model.graph is service.influence_graph
        assert service.hashtag_model.graph is service.influence_graph
        assert service.url_model.graph is service.influence_graph

    def test_models_differ(self, service):
        assert not np.array_equal(
            service.retweet_model.edge_probabilities,
            service.hashtag_model.edge_probabilities,
        )

    def test_activity_is_distribution(self, service):
        assert service._activity.sum() == pytest.approx(1.0)  # noqa: SLF001


class TestGeneratedCorpus:
    def test_record_per_message(self, corpus):
        dataset, records = corpus
        assert len(records) == 300
        assert len(dataset) >= 300  # plus retweets/adoptions

    def test_all_three_kinds_present(self, corpus):
        _dataset, records = corpus
        kinds = {record.kind for record in records}
        assert kinds == {"plain", "hashtag", "url"}

    def test_retweet_texts_parse_back_to_cascade(self, corpus, service):
        """Every plain cascade's flow is recoverable from text syntax."""
        dataset, records = corpus
        plain = [r for r in records if r.kind == "plain" and r.cascade.impact > 0]
        assert plain, "expected at least one spreading plain message"
        record = plain[0]
        retweeters = set()
        for tweet in dataset:
            chain, body = parse_retweet_chain(tweet.text)
            if chain and body == record.key and chain[-1] == record.author:
                retweeters.add(tweet.author)
        expected = {
            str(node)
            for node in record.cascade.active_nodes - record.cascade.sources
        }
        assert retweeters == expected

    def test_hashtag_adopters_tweet_fresh_text(self, corpus):
        dataset, records = corpus
        tagged = [r for r in records if r.kind == "hashtag"]
        assert tagged
        for record in tagged[:10]:
            mentions = [
                tweet
                for tweet in dataset
                if record.key[1:] in extract_hashtags(tweet.text)
            ]
            # adopters never use RT syntax for hashtag spreads
            assert all(not is_retweet(tweet.text) for tweet in mentions)

    def test_hashtag_offline_adopters_exist(self, service):
        config = TwitterConfig(
            n_users=30,
            n_follow_edges=100,
            message_kind_weights=(0.0, 1.0, 0.0),
            offline_adoption_rate=3.0,
        )
        local = SyntheticTwitter(config, rng=2)
        _dataset, records = local.generate(50, rng=3)
        assert any(record.offline_adopters for record in records)

    def test_urls_have_no_offline_adopters(self, corpus):
        _dataset, records = corpus
        for record in records:
            if record.kind == "url":
                assert record.offline_adopters == ()

    def test_url_keys_unique(self, corpus):
        _dataset, records = corpus
        urls = [r.key for r in records if r.kind == "url"]
        assert len(set(urls)) == len(urls)

    def test_timestamps_follow_rounds(self, corpus):
        dataset, records = corpus
        record = next(r for r in records if r.cascade.impact > 0)
        by_author = {}
        for tweet in dataset:
            if record.key in tweet.text:
                by_author.setdefault(tweet.author, tweet.time)
        for node in record.cascade.active_nodes:
            if str(node) in by_author and str(node) not in record.offline_adopters:
                expected = record.origin_time + record.cascade.activation_round[node]
                assert by_author[str(node)] == expected

    def test_reproducible_with_seed(self, service):
        a, _ = service.generate(50, rng=9)
        b, _ = service.generate(50, rng=9)
        assert [(t.author, t.time, t.text) for t in a] == [
            (t.author, t.time, t.text) for t in b
        ]


class TestRecordLoss:
    def test_originals_dropped(self):
        config = TwitterConfig(
            n_users=30,
            n_follow_edges=200,
            message_kind_weights=(1.0, 0.0, 0.0),
            drop_original_probability=1.0,
        )
        service = SyntheticTwitter(config, rng=4)
        dataset, records = service.generate(100, rng=5)
        spreading = [r for r in records if r.cascade.impact > 0]
        assert spreading
        # originals of spreading messages must be absent
        original_texts = {r.key for r in spreading}
        plain_tweets = {
            tweet.text for tweet in dataset if not is_retweet(tweet.text)
        }
        assert not (original_texts & plain_tweets)


class TestPreferentialTopology:
    def test_scale_free_world_generates(self):
        config = TwitterConfig(
            n_users=60, n_follow_edges=240, topology="preferential"
        )
        service = SyntheticTwitter(config, rng=6)
        degrees = sorted(
            (
                service.influence_graph.out_degree(node)
                for node in service.influence_graph.nodes()
            ),
            reverse=True,
        )
        assert degrees[0] >= 3 * max(degrees[len(degrees) // 2], 1)
        dataset, records = service.generate(50, rng=7)
        assert len(records) == 50

    def test_invalid_topology_rejected(self):
        with pytest.raises(EvidenceError):
            TwitterConfig(topology="smallworld")


class TestEventLog:
    def test_one_event_per_record_in_order(self, corpus, service):
        _, records = corpus
        events = service.event_log(records)
        assert len(events) == len(records)
        for index, (event, record) in enumerate(zip(events, records)):
            assert event.event_id == index
            assert event.timestamp == float(record.origin_time)

    def test_kinds_map_to_model_names(self, corpus, service):
        _, records = corpus
        events = service.event_log(records)
        expected = {"plain": "retweet", "hashtag": "hashtag", "url": "url"}
        for event, record in zip(events, records):
            assert event.model == expected[record.kind]

    def test_model_names_remappable(self, corpus, service):
        _, records = corpus
        events = service.event_log(
            records, model_names={"plain": "custom"}
        )
        plain = [e for e, r in zip(events, records) if r.kind == "plain"]
        assert plain and all(event.model == "custom" for event in plain)

    def test_events_carry_the_ground_truth_cascade(self, corpus, service):
        _, records = corpus
        graph = service.influence_graph
        events = service.event_log(records)
        record = next(r for r in records if len(r.cascade.active_edges) > 0)
        event = events[records.index(record)]
        assert set(event.sources) == set(record.cascade.sources)
        assert set(event.active_nodes) == set(record.cascade.active_nodes)
        assert set(event.active_edges) == {
            graph.edge(index).as_pair()
            for index in record.cascade.active_edges
        }

    def test_offline_adopters_excluded(self, service):
        _, records = service.generate(300, rng=2)
        events = service.event_log(records)
        offline = [
            (event, record)
            for event, record in zip(events, records)
            if record.offline_adopters
        ]
        assert offline, "fixture produced no offline adoption"
        for event, record in offline:
            purely_offline = set(record.offline_adopters) - set(
                record.cascade.active_nodes
            )
            assert not purely_offline & set(event.active_nodes)

    def test_stream_is_absorbable(self, corpus, service):
        """The emitted log replays into a live service without error."""
        from repro.core.beta_icm import BetaICM
        from repro.service.api import FlowQueryService
        from repro.service.ingest import StreamIngestor

        _, records = corpus
        events = service.event_log(records)[:25]
        flow_service = FlowQueryService(rng=0)
        graph = service.influence_graph
        for name in ("retweet", "hashtag", "url"):
            flow_service.register(name, BetaICM.uniform_prior(graph))
        report = StreamIngestor(flow_service).absorb_batch(events)
        assert report.n_events == 25
