"""Round-trip tests for JSON persistence."""

import numpy as np
import pytest

from repro.core.beta_icm import BetaICM
from repro.core.icm import ICM
from repro.errors import ModelError
from repro.graph.digraph import DiGraph
from repro.io import (
    load_attributed_evidence,
    load_beta_icm,
    load_icm,
    load_unattributed_evidence,
    save_attributed_evidence,
    save_beta_icm,
    save_icm,
    save_unattributed_evidence,
)
from repro.learning.evidence import (
    ActivationTrace,
    AttributedEvidence,
    AttributedObservation,
    UnattributedEvidence,
)


@pytest.fixture
def graph():
    return DiGraph(edges=[("a", "b"), ("b", "c"), ("a", "c")])


class TestIcmRoundTrip:
    def test_probabilities_and_indexing_preserved(self, graph, tmp_path):
        model = ICM(graph, [0.25, 0.5, 0.75])
        path = tmp_path / "model.json"
        save_icm(model, path)
        loaded = load_icm(path)
        assert np.array_equal(loaded.edge_probabilities, model.edge_probabilities)
        for edge in graph.iter_edges():
            assert loaded.graph.edge_index(edge.src, edge.dst) == edge.index

    def test_wrong_kind_rejected(self, graph, tmp_path):
        model = ICM(graph, [0.25, 0.5, 0.75])
        path = tmp_path / "model.json"
        save_icm(model, path)
        with pytest.raises(ModelError, match="expected a"):
            load_beta_icm(path)

    def test_non_json_nodes_rejected(self, tmp_path):
        graph = DiGraph(edges=[(("tuple", "node"), "b")])
        model = ICM(graph, [0.5])
        with pytest.raises(ModelError, match="not JSON-serialisable"):
            save_icm(model, tmp_path / "model.json")

    def test_version_check(self, graph, tmp_path):
        import json

        path = tmp_path / "model.json"
        save_icm(ICM(graph, [0.1, 0.2, 0.3]), path)
        payload = json.loads(path.read_text())
        payload["format_version"] = 99
        path.write_text(json.dumps(payload))
        with pytest.raises(ModelError, match="format version"):
            load_icm(path)


class TestBetaIcmRoundTrip:
    def test_parameters_preserved(self, graph, tmp_path):
        model = BetaICM(graph, [2.0, 3.5, 1.0], [4.0, 1.0, 9.5])
        path = tmp_path / "beta.json"
        save_beta_icm(model, path)
        loaded = load_beta_icm(path)
        assert np.array_equal(loaded.alphas, model.alphas)
        assert np.array_equal(loaded.betas, model.betas)

    def test_sub_unit_parameters_survive(self, graph, tmp_path):
        model = BetaICM(graph, [0.5, 1.0, 1.0], [1.0, 0.3, 1.0], min_param=0.1)
        path = tmp_path / "beta.json"
        save_beta_icm(model, path)
        loaded = load_beta_icm(path)
        assert loaded.edge_parameters("a", "b") == (0.5, 1.0)


class TestEvidenceRoundTrip:
    def test_attributed(self, tmp_path):
        evidence = AttributedEvidence(
            [
                AttributedObservation(
                    frozenset({"a"}),
                    frozenset({"a", "b", "c"}),
                    frozenset({("a", "b"), ("b", "c")}),
                ),
                AttributedObservation(
                    frozenset({"b"}), frozenset({"b"}), frozenset()
                ),
            ]
        )
        path = tmp_path / "attributed.json"
        save_attributed_evidence(evidence, path)
        loaded = load_attributed_evidence(path)
        assert len(loaded) == 2
        assert loaded[0].active_edges == evidence[0].active_edges
        assert loaded[1].sources == frozenset({"b"})

    def test_unattributed(self, tmp_path):
        evidence = UnattributedEvidence(
            [
                ActivationTrace(
                    {"a": 0, "b": 3}, frozenset({"a"}), horizon=10
                )
            ]
        )
        path = tmp_path / "traces.json"
        save_unattributed_evidence(evidence, path)
        loaded = load_unattributed_evidence(path)
        assert len(loaded) == 1
        assert loaded[0].time_of("b") == 3
        assert loaded[0].horizon == 10
        assert loaded[0].sources == frozenset({"a"})

    def test_trained_model_round_trip_usable(self, graph, tmp_path):
        """A loaded betaICM plugs straight into the samplers."""
        from repro.mcmc.chain import ChainSettings
        from repro.mcmc.flow_estimator import estimate_flow_probability

        model = BetaICM(graph, [8.0, 2.0, 5.0], [2.0, 8.0, 5.0])
        path = tmp_path / "beta.json"
        save_beta_icm(model, path)
        loaded = load_beta_icm(path)
        estimate = estimate_flow_probability(
            loaded,
            "a",
            "c",
            n_samples=400,
            settings=ChainSettings(burn_in=100, thinning=1),
            rng=0,
        )
        assert 0.0 <= estimate.probability <= 1.0
