"""The repository's own source must satisfy its own invariants.

This is the test-suite mirror of the CI ``static-analysis`` job: if a
change introduces an unguarded service mutation or a global-RNG call,
this fails locally before CI ever runs.
"""

from pathlib import Path

import pytest

from repro.lint import Severity, lint_paths
from repro.lint.cli import main
from repro.lint.engine import resolve_rules

SRC_REPRO = Path(__file__).resolve().parents[2] / "src" / "repro"

pytestmark = pytest.mark.skipif(
    not SRC_REPRO.is_dir(), reason="source tree not available (installed run)"
)


def test_source_tree_is_lint_clean():
    diagnostics = lint_paths([str(SRC_REPRO)])
    errors = [d for d in diagnostics if d.severity is Severity.ERROR]
    assert errors == [], "\n".join(d.format() for d in errors)


def test_cli_self_check_exits_zero(capsys):
    assert main([str(SRC_REPRO)]) == 0
    assert "repro-lint: clean" in capsys.readouterr().out


def test_no_global_rng_calls_anywhere():
    # RNG001 repo-wide with no suppressions in play: the engine threads
    # explicit generators everywhere, so this must hold exactly.
    diagnostics = lint_paths(
        [str(SRC_REPRO)], rules=resolve_rules(["RNG001"])
    )
    assert diagnostics == [], "\n".join(d.format() for d in diagnostics)
