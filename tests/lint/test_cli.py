"""The repro-lint console script: exit codes and output formats."""

import json

from repro.lint.cli import main

RNG_TRIGGER = "import numpy as np\nx = np.random.random(3)\n"
CLEAN = "from repro.rng import ensure_rng\n\n\ndef draw(rng=None):\n    return ensure_rng(rng).random(3)\n"


def write_module(tmp_path, name, source):
    target = tmp_path / name
    target.write_text(source)
    return str(target)


class TestExitCodes:
    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        path = write_module(tmp_path, "clean.py", CLEAN)
        assert main([path]) == 0
        assert "repro-lint: clean" in capsys.readouterr().out

    def test_error_findings_exit_one(self, tmp_path, capsys):
        path = write_module(tmp_path, "bad.py", RNG_TRIGGER)
        assert main([path]) == 1
        out = capsys.readouterr().out
        assert "RNG001" in out
        assert "1 error(s)" in out

    def test_no_paths_is_usage_error(self, capsys):
        assert main([]) == 2
        assert "no paths given" in capsys.readouterr().err

    def test_unknown_rule_is_usage_error(self, tmp_path, capsys):
        path = write_module(tmp_path, "clean.py", CLEAN)
        assert main(["--select", "NOPE999", path]) == 2
        assert "unknown rule" in capsys.readouterr().err

    def test_missing_path_is_usage_error(self, tmp_path, capsys):
        assert main([str(tmp_path / "absent.py")]) == 2
        assert "no such file" in capsys.readouterr().err


class TestSelection:
    def test_select_limits_rules(self, tmp_path, capsys):
        path = write_module(tmp_path, "bad.py", RNG_TRIGGER)
        assert main(["--select", "THR001", path]) == 0
        assert "repro-lint: clean" in capsys.readouterr().out

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("RNG001", "MUT001", "ERR001", "HOT001", "THR001"):
            assert rule_id in out


class TestJsonFormat:
    def test_json_payload_shape(self, tmp_path, capsys):
        path = write_module(tmp_path, "bad.py", RNG_TRIGGER)
        assert main(["--format", "json", path]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["summary"] == {"errors": 1, "warnings": 0}
        (diagnostic,) = payload["diagnostics"]
        assert diagnostic["rule"] == "RNG001"
        assert diagnostic["line"] == 2
        assert diagnostic["path"].endswith("bad.py")

    def test_json_clean_tree(self, tmp_path, capsys):
        path = write_module(tmp_path, "clean.py", CLEAN)
        assert main(["--format", "json", path]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload == {
            "diagnostics": [],
            "summary": {"errors": 0, "warnings": 0},
        }
