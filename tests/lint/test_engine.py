"""Engine-level behaviour: suppressions, scoping, parse errors, registry."""

import textwrap

import pytest

from repro.lint import Diagnostic, Severity, all_rules, lint_paths, lint_source
from repro.lint.engine import (
    PARSE_RULE_ID,
    Rule,
    parse_suppressions,
    register_rule,
    resolve_rules,
)

RNG_TRIGGER = "import numpy as np\nx = np.random.random(3)\n"


def rule_ids(diagnostics):
    return [d.rule_id for d in diagnostics]


class TestRegistry:
    def test_all_builtin_rules_registered(self):
        assert set(all_rules()) == {
            "RNG001",
            "MUT001",
            "ERR001",
            "HOT001",
            "THR001",
            "OBS001",
            "OBS002",
        }

    def test_resolve_rules_default_is_everything(self):
        rules = resolve_rules()
        assert {rule.rule_id for rule in rules} == set(all_rules())

    def test_resolve_rules_selection(self):
        rules = resolve_rules(["RNG001", "THR001"])
        assert [rule.rule_id for rule in rules] == ["RNG001", "THR001"]

    def test_resolve_rules_unknown_id(self):
        with pytest.raises(ValueError, match="unknown rule 'NOPE999'"):
            resolve_rules(["NOPE999"])

    def test_register_rule_rejects_duplicates(self):
        class Clone(Rule):
            rule_id = "RNG001"

        with pytest.raises(ValueError, match="duplicate rule id"):
            register_rule(Clone)

    def test_register_rule_requires_id(self):
        class Anonymous(Rule):
            pass

        with pytest.raises(ValueError, match="must set rule_id"):
            register_rule(Anonymous)


class TestSuppressions:
    def test_same_line_suppression(self):
        source = (
            "import numpy as np\n"
            "x = np.random.random(3)  # repro-lint: disable=RNG001\n"
        )
        assert lint_source(source) == []

    def test_same_line_suppression_is_rule_specific(self):
        source = (
            "import numpy as np\n"
            "x = np.random.random(3)  # repro-lint: disable=MUT001\n"
        )
        assert rule_ids(lint_source(source)) == ["RNG001"]

    def test_next_line_suppression(self):
        source = (
            "import numpy as np\n"
            "# repro-lint: disable-next-line=RNG001\n"
            "x = np.random.random(3)\n"
        )
        assert lint_source(source) == []

    def test_file_level_suppression(self):
        source = (
            "# repro-lint: disable-file=RNG001\n"
            "import numpy as np\n"
            "x = np.random.random(3)\n"
            "y = np.random.random(4)\n"
        )
        assert lint_source(source) == []

    def test_all_token_suppresses_every_rule(self):
        source = (
            "import numpy as np\n"
            "x = np.random.random(3)  # repro-lint: disable=all\n"
        )
        assert lint_source(source) == []

    def test_multiple_rules_in_one_directive(self):
        source = (
            "import numpy as np\n"
            "x = np.random.random(3)  # repro-lint: disable=MUT001,RNG001\n"
        )
        assert lint_source(source) == []

    def test_marker_inside_string_does_not_suppress(self):
        source = (
            "import numpy as np\n"
            'x = np.random.random(3); s = "# repro-lint: disable=RNG001"\n'
        )
        assert rule_ids(lint_source(source)) == ["RNG001"]

    def test_parse_suppressions_shapes(self):
        per_line, file_level = parse_suppressions(
            "# repro-lint: disable-file=HOT001\n"
            "x = 1  # repro-lint: disable=RNG001, ERR001\n"
            "# repro-lint: disable-next-line=MUT001\n"
            "y = 2\n"
        )
        assert file_level == {"HOT001"}
        assert per_line[2] == {"RNG001", "ERR001"}
        assert per_line[4] == {"MUT001"}


class TestLintSource:
    def test_clean_source_yields_nothing(self):
        source = textwrap.dedent(
            """
            from repro.rng import ensure_rng

            def draw(rng=None):
                return ensure_rng(rng).random(3)
            """
        )
        assert lint_source(source) == []

    def test_syntax_error_yields_parse_diagnostic(self):
        diagnostics = lint_source("def broken(:\n")
        assert len(diagnostics) == 1
        diagnostic = diagnostics[0]
        assert diagnostic.rule_id == PARSE_RULE_ID
        assert diagnostic.severity is Severity.ERROR
        assert "does not parse" in diagnostic.message

    def test_path_scoping_limits_hot001(self):
        source = "for edge in graph.iter_edges():\n    pass\n"
        inside = lint_source(source, path="src/repro/mcmc/estimator.py")
        outside = lint_source(source, path="src/repro/learning/mle.py")
        assert "HOT001" in rule_ids(inside)
        assert "HOT001" not in rule_ids(outside)

    def test_diagnostics_sorted_by_location(self):
        source = (
            "import numpy as np\n"
            "b = np.random.random(3)\n"
            "a = np.random.random(3)\n"
        )
        diagnostics = lint_source(source)
        assert [d.line for d in diagnostics] == [2, 3]

    def test_diagnostic_format_and_payload(self):
        diagnostic = lint_source(RNG_TRIGGER, path="pkg/mod.py")[0]
        assert diagnostic.format().startswith("pkg/mod.py:2:")
        payload = diagnostic.to_payload()
        assert payload["rule"] == "RNG001"
        assert payload["path"] == "pkg/mod.py"
        assert payload["severity"] == "error"

    def test_explicit_rule_subset(self):
        diagnostics = lint_source(RNG_TRIGGER, rules=resolve_rules(["MUT001"]))
        assert diagnostics == []


class TestLintPaths:
    def test_walks_directories_and_skips_non_python(self, tmp_path):
        package = tmp_path / "pkg"
        package.mkdir()
        (package / "bad.py").write_text(RNG_TRIGGER)
        (package / "good.py").write_text("x = 1\n")
        (package / "notes.txt").write_text(RNG_TRIGGER)
        diagnostics = lint_paths([str(tmp_path)])
        assert rule_ids(diagnostics) == ["RNG001"]
        assert diagnostics[0].path.endswith("bad.py")

    def test_single_file_path(self, tmp_path):
        target = tmp_path / "module.py"
        target.write_text(RNG_TRIGGER)
        assert rule_ids(lint_paths([str(target)])) == ["RNG001"]

    def test_missing_path_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="no such file"):
            lint_paths([str(tmp_path / "absent")])

    def test_diagnostic_is_hashable_and_frozen(self):
        diagnostic = Diagnostic(
            path="a.py",
            line=1,
            col=0,
            rule_id="RNG001",
            severity=Severity.ERROR,
            message="x",
        )
        assert hash(diagnostic) is not None
        with pytest.raises(AttributeError):
            diagnostic.line = 2
