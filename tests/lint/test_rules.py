"""Trigger/pass fixture pairs for each of the six invariant rules.

Every test lints an in-memory source string through the real engine
(:func:`repro.lint.lint_source`) with a synthetic path chosen to land
inside (or outside) the rule's scope, so scoping, suppression and the
rule visitor are all exercised together.
"""

import textwrap

from repro.lint import lint_source
from repro.lint.engine import resolve_rules

MCMC_PATH = "src/repro/mcmc/fixture.py"
CSR_PATH = "src/repro/graph/csr.py"
SERVICE_PATH = "src/repro/service/cache.py"


def findings(source, path="<memory>.py", rule=None):
    rules = resolve_rules([rule]) if rule else None
    return lint_source(textwrap.dedent(source), path=path, rules=rules)


def rule_ids(source, path="<memory>.py", rule=None):
    return [d.rule_id for d in findings(source, path=path, rule=rule)]


class TestRNG001:
    def test_numpy_module_api_triggers(self):
        assert rule_ids(
            """
            import numpy as np
            x = np.random.random(10)
            """
        ) == ["RNG001"]

    def test_numpy_seed_triggers(self):
        assert rule_ids(
            """
            import numpy
            numpy.random.seed(0)
            """
        ) == ["RNG001"]

    def test_numpy_random_submodule_alias_triggers(self):
        assert rule_ids(
            """
            from numpy import random as npr
            x = npr.uniform(0.0, 1.0)
            """
        ) == ["RNG001"]

    def test_stdlib_random_module_triggers(self):
        assert rule_ids(
            """
            import random
            x = random.shuffle(items)
            """
        ) == ["RNG001"]

    def test_stdlib_from_import_triggers(self):
        assert rule_ids(
            """
            from random import choice
            x = choice(items)
            """
        ) == ["RNG001"]

    def test_default_rng_construction_passes(self):
        assert (
            rule_ids(
                """
                import numpy as np
                rng = np.random.default_rng(42)
                x = rng.random(10)
                """
            )
            == []
        )

    def test_bit_generator_construction_passes(self):
        assert (
            rule_ids(
                """
                from numpy.random import Generator, PCG64
                rng = Generator(PCG64(7))
                """
            )
            == []
        )

    def test_ensure_rng_usage_passes(self):
        assert (
            rule_ids(
                """
                from repro.rng import ensure_rng

                def draw(rng=None):
                    return ensure_rng(rng).random(3)
                """
            )
            == []
        )


class TestMUT001:
    def test_subscript_store_triggers(self):
        assert rule_ids(
            """
            def poke(model, i):
                model.edge_probabilities[i] = 0.5
            """
        ) == ["MUT001"]

    def test_aug_assign_triggers(self):
        assert rule_ids(
            """
            def scale(model):
                model.alphas += 1.0
            """
        ) == ["MUT001"]

    def test_mutating_method_triggers(self):
        assert rule_ids(
            """
            def reset(model):
                model.betas.fill(1.0)
            """
        ) == ["MUT001"]

    def test_np_copyto_triggers(self):
        assert rule_ids(
            """
            import numpy as np

            def overwrite(model, values):
                np.copyto(model.probabilities, values)
            """
        ) == ["MUT001"]

    def test_private_backing_field_triggers(self):
        assert rule_ids(
            """
            def poke(model, i):
                model._probabilities[i] = 0.0
            """
        ) == ["MUT001"]

    def test_init_construction_is_exempt(self):
        assert (
            rule_ids(
                """
                class Model:
                    def __init__(self, values):
                        self._probabilities = values
                        self._probabilities[0] = 0.0
                """
            )
            == []
        )

    def test_copy_then_rebuild_passes(self):
        assert (
            rule_ids(
                """
                def learn(model, i, value):
                    updated = model.edge_probabilities.copy()
                    updated[i] = value
                    return model.with_probabilities(updated)
                """
            )
            == []
        )

    def test_registry_module_is_excluded(self):
        source = """
        def invalidate(model, i):
            model.edge_probabilities[i] = 0.5
        """
        assert rule_ids(source, path="src/repro/service/registry.py") == []
        assert rule_ids(source, path="src/repro/service/planner.py") == [
            "MUT001"
        ]


class TestERR001:
    def test_off_taxonomy_raise_triggers(self):
        assert rule_ids(
            """
            def fetch(mapping, key):
                raise RuntimeError("boom")
            """
        ) == ["ERR001"]

    def test_key_error_triggers(self):
        assert rule_ids(
            """
            def fetch(mapping, key):
                raise KeyError(key)
            """
        ) == ["ERR001"]

    def test_taxonomy_raise_passes(self):
        assert (
            rule_ids(
                """
                from repro.errors import GraphError

                def check(n):
                    if n < 0:
                        raise GraphError("negative")
                """
            )
            == []
        )

    def test_value_error_boundary_passes(self):
        assert (
            rule_ids(
                """
                def check(n):
                    if n < 0:
                        raise ValueError("negative")
                    if not isinstance(n, int):
                        raise TypeError("not an int")
                """
            )
            == []
        )

    def test_reraise_forms_pass(self):
        assert (
            rule_ids(
                """
                def forward(fn):
                    try:
                        fn()
                    except ValueError as error:
                        raise error
                    except TypeError:
                        raise
                """
            )
            == []
        )

    def test_bare_except_triggers(self):
        assert rule_ids(
            """
            def swallow(fn):
                try:
                    fn()
                except:
                    pass
            """
        ) == ["ERR001"]

    def test_broad_except_triggers(self):
        assert rule_ids(
            """
            def swallow(fn):
                try:
                    fn()
                except Exception:
                    pass
            """
        ) == ["ERR001"]

    def test_broad_except_in_tuple_triggers(self):
        assert rule_ids(
            """
            def swallow(fn):
                try:
                    fn()
                except (ValueError, BaseException):
                    pass
            """
        ) == ["ERR001"]

    def test_specific_except_passes(self):
        assert (
            rule_ids(
                """
                def tolerate(fn):
                    try:
                        fn()
                    except (ValueError, OSError):
                        pass
                """
            )
            == []
        )


class TestHOT001:
    def test_iter_edges_loop_triggers_in_mcmc(self):
        assert rule_ids(
            """
            def visit(graph):
                for edge in graph.iter_edges():
                    pass
            """,
            path=MCMC_PATH,
        ) == ["HOT001"]

    def test_range_over_n_edges_triggers(self):
        assert rule_ids(
            """
            def visit(graph):
                for i in range(graph.n_edges):
                    pass
            """,
            path=MCMC_PATH,
        ) == ["HOT001"]

    def test_per_element_name_triggers_in_csr(self):
        assert rule_ids(
            """
            def visit(edges):
                for edge in edges:
                    pass
            """,
            path=CSR_PATH,
        ) == ["HOT001"]

    def test_chain_step_loop_passes(self):
        assert (
            rule_ids(
                """
                def run(n_steps, chain):
                    for step in range(n_steps):
                        chain.advance()
                """,
                path=MCMC_PATH,
            )
            == []
        )

    def test_per_chain_range_triggers(self):
        # The lockstep forest kernel steps all chains with one numpy op
        # per tree level; a per-chain Python loop defeats it.
        assert rule_ids(
            """
            def descend(forest, n_chains):
                for row in range(n_chains):
                    forest.walk(row)
            """,
            path=MCMC_PATH,
        ) == ["HOT001"]

    def test_chains_collection_triggers(self):
        assert rule_ids(
            """
            def step_all(chains):
                for chain in chains:
                    chain.run(1)
            """,
            path=MCMC_PATH,
        ) == ["HOT001"]

    def test_suppressed_compiled_driver_passes(self):
        assert (
            rule_ids(
                """
                def drive(kernel, n_chains):
                    for row in range(n_chains):  # repro-lint: disable=HOT001 - dispatches into C
                        kernel.run_chain(row)
                """,
                path=MCMC_PATH,
            )
            == []
        )

    def test_rule_silent_outside_hot_paths(self):
        source = """
        def visit(graph):
            for edge in graph.iter_edges():
                pass
        """
        assert rule_ids(source, path="src/repro/learning/mle.py") == []
        assert rule_ids(source, path="src/repro/graph/digraph.py") == []

    def test_suppressed_scalar_fallback_passes(self):
        assert (
            rule_ids(
                """
                def seed_state(graph):
                    for edge in graph.iter_edges():  # repro-lint: disable=HOT001
                        pass
                """,
                path=MCMC_PATH,
            )
            == []
        )


class TestTHR001:
    def test_unguarded_attribute_write_triggers(self):
        assert rule_ids(
            """
            class Bank:
                def grow(self, n):
                    self._total = n
            """,
            path=SERVICE_PATH,
        ) == ["THR001"]

    def test_unguarded_container_mutation_triggers(self):
        assert rule_ids(
            """
            class Bank:
                def record(self, block):
                    self._blocks.append(block)
            """,
            path=SERVICE_PATH,
        ) == ["THR001"]

    def test_unguarded_subscript_delete_triggers(self):
        assert rule_ids(
            """
            class Cache:
                def evict(self, key):
                    del self._entries[key]
            """,
            path=SERVICE_PATH,
        ) == ["THR001"]

    def test_with_lock_guard_passes(self):
        assert (
            rule_ids(
                """
                class Bank:
                    def grow(self, n):
                        with self._lock:
                            self._total = n
                            self._blocks.append(n)
                """,
                path=SERVICE_PATH,
            )
            == []
        )

    def test_init_is_exempt(self):
        assert (
            rule_ids(
                """
                class Bank:
                    def __init__(self):
                        self._blocks = []
                        self._blocks.append(0)
                """,
                path=SERVICE_PATH,
            )
            == []
        )

    def test_locked_helper_convention_is_exempt(self):
        assert (
            rule_ids(
                """
                class Bank:
                    def _ensure_chains_locked(self, n):
                        self._chains = n
                """,
                path=SERVICE_PATH,
            )
            == []
        )

    def test_local_mutation_passes(self):
        assert (
            rule_ids(
                """
                class Bank:
                    def snapshot(self):
                        rows = []
                        rows.append(1)
                        return rows
                """,
                path=SERVICE_PATH,
            )
            == []
        )

    def test_rule_silent_outside_service_modules(self):
        source = """
        class Estimator:
            def tick(self):
                self._count += 1
        """
        assert rule_ids(source, path="src/repro/mcmc/chain.py") == []


class TestOBS001:
    def test_time_time_call_triggers(self):
        assert rule_ids(
            """
            import time
            started = time.time()
            """,
            path=MCMC_PATH,
        ) == ["OBS001"]

    def test_time_time_ns_call_triggers(self):
        assert rule_ids(
            """
            import time
            started = time.time_ns()
            """,
            path=MCMC_PATH,
        ) == ["OBS001"]

    def test_aliased_module_import_triggers(self):
        assert rule_ids(
            """
            import time as clock
            started = clock.time()
            """,
            path=MCMC_PATH,
        ) == ["OBS001"]

    def test_from_import_triggers(self):
        assert rule_ids(
            """
            from time import time
            started = time()
            """,
            path=MCMC_PATH,
        ) == ["OBS001"]

    def test_aliased_from_import_triggers(self):
        assert rule_ids(
            """
            from time import time_ns as wall_ns
            started = wall_ns()
            """,
            path=MCMC_PATH,
        ) == ["OBS001"]

    def test_perf_counter_passes(self):
        assert (
            rule_ids(
                """
                import time
                started = time.perf_counter()
                elapsed_ns = time.perf_counter_ns() - 0
                slept = time.monotonic()
                """,
                path=MCMC_PATH,
            )
            == []
        )

    def test_datetime_calendar_labels_pass(self):
        assert (
            rule_ids(
                """
                from datetime import datetime, timezone
                stamp = datetime.now(timezone.utc).isoformat()
                """,
                path=MCMC_PATH,
            )
            == []
        )

    def test_unrelated_time_attribute_passes(self):
        assert (
            rule_ids(
                """
                class Span:
                    def time(self):
                        return 0

                span = Span()
                value = span.time()
                """,
                path=MCMC_PATH,
            )
            == []
        )

    def test_rule_silent_outside_repro(self):
        source = """
        import time
        started = time.time()
        """
        assert rule_ids(source, path="benchmarks/bench_query_service.py") == []

    def test_suppression_comment_respected(self):
        source = (
            "import time\n"
            "stamp = time.time()  # repro-lint: disable=OBS001\n"
        )
        assert rule_ids(source, path=MCMC_PATH) == []


class TestOBS002:
    def test_bare_mint_in_service_triggers(self):
        assert rule_ids(
            """
            from repro.obs.context import new_trace_context

            def handle():
                context = new_trace_context()
                return context
            """,
            path=SERVICE_PATH,
            rule="OBS002",
        ) == ["OBS002"]

    def test_module_qualified_mint_triggers(self):
        assert rule_ids(
            """
            import repro.obs.context

            def handle():
                return repro.obs.context.new_trace_context()
            """,
            path=SERVICE_PATH,
            rule="OBS002",
        ) == ["OBS002"]

    def test_aliased_import_triggers(self):
        assert rule_ids(
            """
            from repro.obs.context import new_trace_context as mint

            def handle():
                return mint()
            """,
            path=SERVICE_PATH,
            rule="OBS002",
        ) == ["OBS002"]

    def test_or_fallback_shape_passes(self):
        assert rule_ids(
            """
            from repro.obs.context import (
                current_trace_context,
                new_trace_context,
            )

            def handle(header):
                context = current_trace_context() or new_trace_context()
                return context
            """,
            path=SERVICE_PATH,
            rule="OBS002",
        ) == []

    def test_chained_or_fallback_passes(self):
        assert rule_ids(
            """
            from repro.obs.context import (
                current_trace_context,
                new_trace_context,
                parse_trace_header,
            )

            def handle(header):
                return (
                    parse_trace_header(header)
                    or current_trace_context()
                    or new_trace_context()
                )
            """,
            path=SERVICE_PATH,
            rule="OBS002",
        ) == []

    def test_mint_as_first_or_operand_still_triggers(self):
        # new_trace_context() or X evaluates the mint unconditionally --
        # it replaces any active context, so the shape is not a fallback.
        assert rule_ids(
            """
            from repro.obs.context import (
                current_trace_context,
                new_trace_context,
            )

            def handle():
                return new_trace_context() or current_trace_context()
            """,
            path=SERVICE_PATH,
            rule="OBS002",
        ) == ["OBS002"]

    def test_outside_service_is_out_of_scope(self):
        assert rule_ids(
            """
            from repro.obs.context import new_trace_context

            def per_op():
                return new_trace_context()
            """,
            path="src/repro/scenarios/loadgen.py",
            rule="OBS002",
        ) == []

    def test_disable_comment_suppresses(self):
        assert rule_ids(
            """
            from repro.obs.context import new_trace_context

            def background_job():
                return new_trace_context()  # repro-lint: disable=OBS002
            """,
            path=SERVICE_PATH,
            rule="OBS002",
        ) == []

    def test_server_handler_shape_is_clean(self):
        # The exact shape repro-serve uses must stay clean end to end.
        assert rule_ids(
            """
            from repro.obs.context import (
                activate_trace_context,
                current_trace_context,
                new_trace_context,
                parse_trace_header,
            )

            def handle_request(headers, route):
                context = (
                    parse_trace_header(headers.get("X-Repro-Trace"))
                    or current_trace_context()
                    or new_trace_context()
                )
                with activate_trace_context(context):
                    route()
            """,
            path="src/repro/service/server.py",
            rule="OBS002",
        ) == []
