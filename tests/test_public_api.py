"""Meta tests on the public API surface.

Production-quality guarantees that are easy to let rot:

* everything listed in ``repro.__all__`` resolves;
* every public function / class / method in the package carries a
  docstring;
* the package version is a sane semver string.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro


class TestAllExports:
    def test_every_name_resolves(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_no_duplicates(self):
        assert len(set(repro.__all__)) == len(repro.__all__)

    def test_version(self):
        parts = repro.__version__.split(".")
        assert len(parts) == 3
        assert all(part.isdigit() for part in parts)


def _walk_public_objects():
    """Yield (qualified name, object) for every public function/class."""
    package = repro
    for module_info in pkgutil.walk_packages(
        package.__path__, prefix="repro."
    ):
        module = importlib.import_module(module_info.name)
        for attr_name, obj in vars(module).items():
            if attr_name.startswith("_"):
                continue
            if not (inspect.isfunction(obj) or inspect.isclass(obj)):
                continue
            if getattr(obj, "__module__", None) != module.__name__:
                continue  # re-export; documented at its definition site
            yield f"{module.__name__}.{attr_name}", obj


class TestDocstrings:
    def test_every_public_function_and_class_documented(self):
        undocumented = []
        for qualified_name, obj in _walk_public_objects():
            if not inspect.getdoc(obj):
                undocumented.append(qualified_name)
        assert not undocumented, f"missing docstrings: {undocumented}"

    def test_every_public_method_documented(self):
        undocumented = []
        for qualified_name, obj in _walk_public_objects():
            if not inspect.isclass(obj):
                continue
            for method_name, member in vars(obj).items():
                if method_name.startswith("_"):
                    continue
                func = member
                if isinstance(member, (staticmethod, classmethod)):
                    func = member.__func__
                elif isinstance(member, property):
                    func = member.fget
                if not callable(func):
                    continue
                if not inspect.getdoc(func):
                    undocumented.append(f"{qualified_name}.{method_name}")
        assert not undocumented, f"missing docstrings: {undocumented}"

    def test_every_module_documented(self):
        undocumented = []
        for module_info in pkgutil.walk_packages(
            repro.__path__, prefix="repro."
        ):
            module = importlib.import_module(module_info.name)
            if not module.__doc__:
                undocumented.append(module.__name__)
        assert not undocumented, f"missing module docstrings: {undocumented}"
