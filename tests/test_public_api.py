"""Meta tests on the public API surface.

Production-quality guarantees that are easy to let rot:

* everything listed in ``repro.__all__`` resolves;
* every public function / class / method in the package carries a
  docstring;
* every ``__all__`` export of the strictly-typed core ships a docstring
  and a fully annotated signature (the runnable backstop for the
  ``mypy --strict`` CI gate, which needs mypy installed);
* the package carries a ``py.typed`` marker so those annotations reach
  downstream type checkers;
* the package version is a sane semver string.
"""

import importlib
import inspect
import pathlib
import pkgutil

import pytest

import repro

#: The strictly-typed core: every ``__all__`` export here must carry a
#: docstring and complete signature annotations (see pyproject's
#: ``[tool.mypy]`` -- these are the packages with no override).
TYPED_CORE_MODULES = [
    "repro.core",
    "repro.graph",
    "repro.mcmc",
    "repro.service",
    "repro.lint",
    "repro.obs",
    "repro.errors",
    "repro.io",
    "repro.rng",
]


class TestAllExports:
    def test_every_name_resolves(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_no_duplicates(self):
        assert len(set(repro.__all__)) == len(repro.__all__)

    def test_version(self):
        parts = repro.__version__.split(".")
        assert len(parts) == 3
        assert all(part.isdigit() for part in parts)


def _walk_public_objects():
    """Yield (qualified name, object) for every public function/class."""
    package = repro
    for module_info in pkgutil.walk_packages(
        package.__path__, prefix="repro."
    ):
        module = importlib.import_module(module_info.name)
        for attr_name, obj in vars(module).items():
            if attr_name.startswith("_"):
                continue
            if not (inspect.isfunction(obj) or inspect.isclass(obj)):
                continue
            if getattr(obj, "__module__", None) != module.__name__:
                continue  # re-export; documented at its definition site
            yield f"{module.__name__}.{attr_name}", obj


class TestDocstrings:
    def test_every_public_function_and_class_documented(self):
        undocumented = []
        for qualified_name, obj in _walk_public_objects():
            if not inspect.getdoc(obj):
                undocumented.append(qualified_name)
        assert not undocumented, f"missing docstrings: {undocumented}"

    def test_every_public_method_documented(self):
        undocumented = []
        for qualified_name, obj in _walk_public_objects():
            if not inspect.isclass(obj):
                continue
            for method_name, member in vars(obj).items():
                if method_name.startswith("_"):
                    continue
                func = member
                if isinstance(member, (staticmethod, classmethod)):
                    func = member.__func__
                elif isinstance(member, property):
                    func = member.fget
                if not callable(func):
                    continue
                if not inspect.getdoc(func):
                    undocumented.append(f"{qualified_name}.{method_name}")
        assert not undocumented, f"missing docstrings: {undocumented}"

    def test_every_module_documented(self):
        undocumented = []
        for module_info in pkgutil.walk_packages(
            repro.__path__, prefix="repro."
        ):
            module = importlib.import_module(module_info.name)
            if not module.__doc__:
                undocumented.append(module.__name__)
        assert not undocumented, f"missing module docstrings: {undocumented}"


def _typed_core_exports():
    """Yield (qualified name, object) for every typed-core __all__ export."""
    for module_name in TYPED_CORE_MODULES:
        module = importlib.import_module(module_name)
        exported = getattr(module, "__all__", None)
        assert exported is not None, f"{module_name} must define __all__"
        for name in exported:
            yield f"{module_name}.{name}", getattr(module, name)


def _signature_gaps(func, owner=""):
    """Parameter/return annotation gaps of one callable, as strings."""
    try:
        signature = inspect.signature(func)
    except (ValueError, TypeError):
        return []  # builtins / C-level callables carry no signature
    gaps = []
    parameters = list(signature.parameters.values())
    if parameters and parameters[0].name in ("self", "cls"):
        parameters = parameters[1:]
    for parameter in parameters:
        if parameter.annotation is inspect.Parameter.empty:
            gaps.append(f"{owner}({parameter.name})")
    if signature.return_annotation is inspect.Signature.empty:
        gaps.append(f"{owner} -> ?")
    return gaps


class TestTypedCoreExports:
    """Every typed-core export is documented and fully annotated."""

    def test_every_export_resolves_and_is_documented(self):
        undocumented = []
        for qualified_name, obj in _typed_core_exports():
            if inspect.isfunction(obj) or inspect.isclass(obj):
                if not inspect.getdoc(obj):
                    undocumented.append(qualified_name)
        assert not undocumented, f"missing docstrings: {undocumented}"

    def test_every_exported_function_is_fully_annotated(self):
        gaps = []
        for qualified_name, obj in _typed_core_exports():
            if inspect.isfunction(obj):
                gaps.extend(_signature_gaps(obj, owner=qualified_name))
        assert not gaps, f"missing annotations: {gaps}"

    def test_every_exported_class_constructor_is_fully_annotated(self):
        gaps = []
        for qualified_name, obj in _typed_core_exports():
            if not inspect.isclass(obj):
                continue
            if issubclass(obj, BaseException):
                continue  # taxonomy classes inherit Exception.__init__
            if getattr(obj, "_is_protocol", False):
                continue  # typing.Protocol injects a synthetic __init__
            init = obj.__dict__.get("__init__")
            if init is None or not inspect.isfunction(init):
                continue  # dataclass-generated or inherited constructor
            parameters = [
                f"{qualified_name}.__init__({gap})"
                for gap in _signature_gaps(init)
            ]
            gaps.extend(parameters)
        assert not gaps, f"missing annotations: {gaps}"

    def test_every_exported_class_public_method_is_fully_annotated(self):
        gaps = []
        for qualified_name, obj in _typed_core_exports():
            if not inspect.isclass(obj) or issubclass(obj, BaseException):
                continue
            for method_name, member in vars(obj).items():
                if method_name.startswith("_"):
                    continue
                func = member
                if isinstance(member, (staticmethod, classmethod)):
                    func = member.__func__
                elif isinstance(member, property):
                    continue  # fget return types are checked by mypy
                if not inspect.isfunction(func):
                    continue
                gaps.extend(
                    _signature_gaps(
                        func, owner=f"{qualified_name}.{method_name}"
                    )
                )
        assert not gaps, f"missing annotations: {gaps}"

    def test_package_ships_py_typed_marker(self):
        marker = pathlib.Path(repro.__file__).parent / "py.typed"
        assert marker.is_file(), "py.typed marker missing from the package"
