"""Integration: raw tweets -> attributed evidence -> betaICM -> MH queries.

Exercises the paper's full attributed pipeline end to end against the
simulator's hidden ground truth.
"""

import numpy as np
import pytest

from repro.core.cascade import simulate_cascade
from repro.evaluation.metrics import rmse
from repro.experiments.common import restrict_beta_icm
from repro.graph.traversal import descendants_within_radius
from repro.learning.attributed import train_beta_icm
from repro.mcmc.chain import ChainSettings
from repro.mcmc.flow_estimator import estimate_flow_probabilities
from repro.twitter.interesting import select_interesting_users
from repro.twitter.preprocess import build_retweet_evidence
from repro.twitter.simulator import SyntheticTwitter, TwitterConfig


@pytest.fixture(scope="module")
def world():
    config = TwitterConfig(
        n_users=50,
        n_follow_edges=300,
        message_kind_weights=(1.0, 0.0, 0.0),
        high_fraction=0.12,
        high_params=(6.0, 6.0),
        low_params=(1.5, 12.0),
        drop_original_probability=0.15,
    )
    service = SyntheticTwitter(config, rng=100)
    tweets, records = service.generate(1500, rng=101)
    return service, tweets, records


@pytest.fixture(scope="module")
def trained(world):
    service, tweets, _records = world
    pipeline = build_retweet_evidence(tweets)
    model = train_beta_icm(pipeline.graph, pipeline.evidence)
    return pipeline, model


class TestPipeline:
    def test_learned_means_close_to_hidden_truth(self, world, trained):
        service, _tweets, _records = world
        pipeline, model = trained
        errors = []
        for edge in pipeline.graph.iter_edges():
            alpha, beta = model.edge_parameters(edge.src, edge.dst)
            if alpha + beta < 40:
                continue  # poorly exposed edges are dominated by the prior
            errors.append(
                abs(
                    model.mean(edge.src, edge.dst)
                    - service.retweet_model.probability(edge.src, edge.dst)
                )
            )
        assert errors
        assert float(np.mean(errors)) < 0.08

    def test_recovery_handles_dropped_originals(self, world, trained):
        pipeline, _model = trained
        assert pipeline.n_recovered > 0

    def test_flow_predictions_match_held_out_cascades(self, world, trained):
        service, tweets, _records = world
        pipeline, model = trained
        focus = select_interesting_users(tweets, top_n=1)[0]
        neighbourhood = descendants_within_radius(pipeline.graph, focus, 2)
        sub_model = restrict_beta_icm(model, neighbourhood)
        others = sorted(node for node in neighbourhood if node != focus)[:10]
        estimates = estimate_flow_probabilities(
            sub_model,
            [(focus, other) for other in others],
            n_samples=1500,
            settings=ChainSettings(burn_in=200, thinning=2),
            rng=0,
        )
        trials = 600
        rng = np.random.default_rng(1)
        hits = {other: 0 for other in others}
        for _ in range(trials):
            cascade = simulate_cascade(service.retweet_model, [focus], rng=rng)
            for other in others:
                if other in cascade.active_nodes:
                    hits[other] += 1
        predicted = [estimates[(focus, other)].probability for other in others]
        empirical = [hits[other] / trials for other in others]
        assert rmse(predicted, empirical) < 0.12
