"""Integration: raw tweets -> tag traces -> unattributed learners -> truth.

Exercises the paper's Section V pipeline end to end, including the
omnipotent user and the URL-vs-hashtag contrast.
"""

import numpy as np
import pytest

from repro.evaluation.metrics import rmse
from repro.learning.goyal import train_goyal
from repro.learning.joint_bayes import train_joint_bayes
from repro.twitter.simulator import SyntheticTwitter, TwitterConfig
from repro.twitter.unattributed import OMNIPOTENT_USER, build_tag_evidence


@pytest.fixture(scope="module")
def world():
    config = TwitterConfig(
        n_users=30,
        n_follow_edges=150,
        message_kind_weights=(0.0, 0.5, 0.5),
        offline_adoption_rate=2.0,
        high_fraction=0.15,
        high_params=(6.0, 6.0),
        low_params=(1.5, 12.0),
    )
    service = SyntheticTwitter(config, rng=200)
    tweets, records = service.generate(700, rng=201)
    return service, tweets, records


def _in_network_rmse(graph, truth, value_of_edge):
    estimates, truths = [], []
    for edge in graph.iter_edges():
        if edge.src == OMNIPOTENT_USER:
            continue
        estimates.append(value_of_edge(edge))
        truths.append(truth.probability(edge.src, edge.dst))
    return rmse(estimates, truths)


class TestUnattributedPipeline:
    def test_joint_bayes_beats_goyal_on_urls(self, world):
        service, tweets, _records = world
        extracted = build_tag_evidence(tweets, service.influence_graph, "url")
        joint = train_joint_bayes(
            extracted.graph,
            extracted.evidence,
            n_samples=250,
            burn_in=250,
            thinning=1,
            rng=0,
        )
        goyal = train_goyal(extracted.graph, extracted.evidence)
        our_error = _in_network_rmse(
            extracted.graph, service.url_model, lambda e: joint.means[e.index]
        )
        goyal_error = _in_network_rmse(
            extracted.graph,
            service.url_model,
            lambda e: goyal.probability_by_index(e.index),
        )
        assert our_error < goyal_error

    def test_hashtags_harder_than_urls(self, world):
        """Out-of-band adoption makes hashtag edges harder to learn."""
        service, tweets, _records = world
        errors = {}
        for kind, truth in (
            ("url", service.url_model),
            ("hashtag", service.hashtag_model),
        ):
            extracted = build_tag_evidence(
                tweets, service.influence_graph, kind
            )
            joint = train_joint_bayes(
                extracted.graph,
                extracted.evidence,
                n_samples=250,
                burn_in=250,
                thinning=1,
                rng=1,
            )
            errors[kind] = _in_network_rmse(
                extracted.graph, truth, lambda e: joint.means[e.index]
            )
        assert errors["hashtag"] > errors["url"] * 0.9  # never much better

    def test_omnipotent_user_absorbs_offline_adoption(self, world):
        """Hashtag traces give the omnipotent edges real probability mass."""
        service, tweets, _records = world
        extracted = build_tag_evidence(tweets, service.influence_graph, "hashtag")
        joint = train_joint_bayes(
            extracted.graph,
            extracted.evidence,
            n_samples=200,
            burn_in=200,
            thinning=1,
            rng=2,
        )
        omnipotent_means = [
            joint.means[edge.index]
            for edge in extracted.graph.iter_edges()
            if edge.src == OMNIPOTENT_USER
        ]
        assert float(np.mean(omnipotent_means)) > 0.01
