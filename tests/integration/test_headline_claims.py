"""Integration: the paper's headline claims at reduced scale.

The benchmark suite asserts the full quick-scale shapes; these reduced
versions run inside `pytest tests/` so the claims cannot silently regress
between benchmark runs.  Each test is the minimal version of one claim.
"""

import numpy as np
import pytest

from repro.baselines.rwr import rwr_flow_estimates
from repro.core.pseudo_state import flow_exists
from repro.evaluation.bucket import PredictionPair, bucket_experiment
from repro.evaluation.calibration import expected_calibration_error
from repro.evaluation.metrics import rmse
from repro.experiments.common import synthetic_bucket_pairs, unattributed_star_evidence
from repro.learning.goyal import goyal_sink_probabilities
from repro.learning.joint_bayes import fit_sink_posterior
from repro.learning.summaries import build_sink_summary
from repro.mcmc.chain import ChainSettings


class TestClaimMHIsCalibratedWhereRWRIsNot:
    """Figs. 1 vs 5, reduced to 80 trials on small graphs."""

    @pytest.fixture(scope="class")
    def trials(self):
        settings = ChainSettings(burn_in=150, thinning=2)
        mh = synthetic_bucket_pairs(
            80, n_nodes=20, n_edges=60, estimator="mh",
            mh_samples=250, settings=settings, rng=0,
        )
        rwr = synthetic_bucket_pairs(
            80, n_nodes=20, n_edges=60, estimator="rwr", rng=0
        )
        return mh, rwr

    def test_mh_beats_rwr_on_calibration(self, trials):
        mh, rwr = trials
        mh_error = expected_calibration_error(bucket_experiment(mh, n_bins=10))
        rwr_error = expected_calibration_error(bucket_experiment(rwr, n_bins=10))
        assert mh_error < rwr_error


class TestClaimJointBayesBeatsGoyalUnderSkew:
    """Fig. 7(b), reduced to one trial at 2000 objects."""

    def test_rmse_gap(self):
        truth_probabilities = (0.15, 0.68, 0.83)
        truth, evidence = unattributed_star_evidence(
            truth_probabilities, 2000, rng=1
        )
        summary = build_sink_summary(truth.graph, evidence, "k")
        truth_vector = [truth.probability(p, "k") for p in summary.parents]
        posterior = fit_sink_posterior(summary, n_samples=400, burn_in=400, rng=2)
        ours = rmse(posterior.means, truth_vector)
        goyal = rmse(goyal_sink_probabilities(summary), truth_vector)
        assert ours < 0.35 * goyal


class TestClaimConditioningWorks:
    """Eq. 6-8: conditioning changes the flow probability the right way."""

    def test_conditioning_raises_downstream_flow(self, chain_icm):
        from repro.core.conditions import FlowConditionSet
        from repro.mcmc.flow_estimator import estimate_flow_probability

        settings = ChainSettings(burn_in=200, thinning=2)
        plain = estimate_flow_probability(
            chain_icm, "a", "c", n_samples=3000, settings=settings, rng=3
        )
        conditioned = estimate_flow_probability(
            chain_icm,
            "a",
            "c",
            conditions=FlowConditionSet.from_tuples([("a", "b", True)]),
            n_samples=3000,
            settings=settings,
            rng=3,
        )
        assert conditioned.probability > plain.probability + 0.1


class TestClaimUncertaintyIsCaptured:
    """Section III-E: nested sampling reflects the evidence's uncertainty."""

    def test_spread_shrinks_with_pseudo_counts(self):
        from repro.core.beta_icm import BetaICM
        from repro.graph.digraph import DiGraph
        from repro.mcmc.nested import nested_flow_distribution

        graph = DiGraph(edges=[("a", "b"), ("b", "c")])
        settings = ChainSettings(burn_in=100, thinning=1)
        spreads = []
        for scale in (1.0, 30.0):
            model = BetaICM(
                graph, [3.0 * scale, 2.0 * scale], [2.0 * scale, 3.0 * scale]
            )
            samples = nested_flow_distribution(
                model, "a", "c", n_models=25, samples_per_model=250,
                settings=settings, rng=4,
            )
            spreads.append(samples.std())
        assert spreads[1] < spreads[0]
