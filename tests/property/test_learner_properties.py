"""Property tests on the learners' statistical invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.learning.goyal import goyal_sink_probabilities
from repro.learning.joint_bayes import fit_sink_posterior
from repro.learning.saito_em import fit_sink_em, summary_log_likelihood
from repro.learning.summaries import SinkSummary


@st.composite
def random_summary(draw, max_parents=4, max_rows=5):
    """A random, internally consistent sink summary."""
    n_parents = draw(st.integers(min_value=1, max_value=max_parents))
    parents = [f"P{i}" for i in range(n_parents)]
    n_rows = draw(st.integers(min_value=1, max_value=max_rows))
    rows = []
    for _ in range(n_rows):
        size = draw(st.integers(min_value=1, max_value=n_parents))
        members = draw(
            st.permutations(parents).map(lambda p: frozenset(p[:size]))
        )
        count = draw(st.integers(min_value=1, max_value=60))
        leaks = draw(st.integers(min_value=0, max_value=count))
        rows.append((members, count, leaks))
    return SinkSummary.from_counts("k", parents, rows)


class TestGoyalProperties:
    @given(summary=random_summary())
    @settings(max_examples=60, deadline=None)
    def test_property_probabilities_valid(self, summary):
        probabilities = goyal_sink_probabilities(summary)
        assert probabilities.shape == (len(summary.parents),)
        assert np.all(probabilities >= 0.0)
        assert np.all(probabilities <= 1.0)

    @given(summary=random_summary(max_parents=1))
    @settings(max_examples=30, deadline=None)
    def test_property_single_parent_is_exact_frequency(self, summary):
        """With one parent, credit assignment is trivial: p = leaks/count."""
        counts, leaks = summary.counts_and_leaks()
        expected = leaks.sum() / counts.sum()
        probabilities = goyal_sink_probabilities(summary)
        assert probabilities[0] == pytest.approx(expected)


class TestEMProperties:
    @given(summary=random_summary())
    @settings(max_examples=30, deadline=None)
    def test_property_em_never_decreases_likelihood(self, summary):
        kappa = np.full(len(summary.parents), 0.4)
        before = summary_log_likelihood(summary, kappa)
        result = fit_sink_em(summary, initial=kappa, max_iterations=25)
        after = result.log_likelihood
        assert after >= before - 1e-7

    @given(summary=random_summary())
    @settings(max_examples=30, deadline=None)
    def test_property_em_output_valid(self, summary):
        result = fit_sink_em(summary, max_iterations=50)
        assert np.all(result.probabilities >= 0.0)
        assert np.all(result.probabilities <= 1.0)
        assert np.isfinite(result.log_likelihood)


class TestJointBayesProperties:
    @given(
        count=st.integers(min_value=1, max_value=80),
        leak_fraction=st.floats(min_value=0.0, max_value=1.0),
        seed=st.integers(min_value=0, max_value=50),
    )
    @settings(max_examples=10, deadline=None)
    def test_property_single_parent_conjugacy(self, count, leak_fraction, seed):
        """One parent => posterior is exactly Beta(1+L, 1+n-L)."""
        leaks = int(round(count * leak_fraction))
        summary = SinkSummary.from_counts("k", ["P0"], [({"P0"}, count, leaks)])
        posterior = fit_sink_posterior(
            summary, n_samples=3000, burn_in=600, rng=seed
        )
        samples = posterior.parent_samples("P0")
        alpha, beta = 1.0 + leaks, 1.0 + count - leaks
        expected_mean = alpha / (alpha + beta)
        expected_std = np.sqrt(
            alpha * beta / ((alpha + beta) ** 2 * (alpha + beta + 1.0))
        )
        assert samples.mean() == pytest.approx(expected_mean, abs=0.04)
        assert samples.std() == pytest.approx(expected_std, abs=0.05)

    @given(summary=random_summary(max_parents=3, max_rows=3))
    @settings(max_examples=10, deadline=None)
    def test_property_samples_in_unit_cube(self, summary):
        posterior = fit_sink_posterior(
            summary, n_samples=300, burn_in=100, rng=0
        )
        assert np.all(posterior.samples > 0.0)
        assert np.all(posterior.samples < 1.0)

    @given(seed=st.integers(min_value=0, max_value=30))
    @settings(max_examples=8, deadline=None)
    def test_property_posterior_mean_respects_aggregate_rate(self, seed):
        """With one fully ambiguous characteristic, the combined leak
        probability under the posterior tracks the observed rate."""
        rng = np.random.default_rng(seed)
        count = 300
        leaks = int(rng.integers(30, 270))
        summary = SinkSummary.from_counts(
            "k", ["A", "B"], [({"A", "B"}, count, leaks)]
        )
        posterior = fit_sink_posterior(
            summary, n_samples=1500, burn_in=800, rng=seed
        )
        combined = 1.0 - (1.0 - posterior.samples[:, 0]) * (
            1.0 - posterior.samples[:, 1]
        )
        assert combined.mean() == pytest.approx(leaks / count, abs=0.05)
