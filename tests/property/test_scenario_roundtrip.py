"""Property tests: scenario specs round-trip and compile deterministically."""

import filecmp
import os
import string

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.scenarios.compiler import compile_scenario
from repro.scenarios.spec import (
    QUERY_KIND_LABELS,
    ChannelMixSpec,
    NoiseSpec,
    PrecisionBucket,
    PriorSpec,
    SamplingSpec,
    ScenarioSpec,
    TopologySpec,
    TrafficSpec,
    spec_fingerprint,
    spec_from_payload,
)

from tests.scenarios.conftest import tiny_spec

names = st.text(
    alphabet=string.ascii_lowercase + string.digits + "._-",
    min_size=1,
    max_size=24,
)
positive = st.floats(
    min_value=0.01, max_value=50.0, allow_nan=False, allow_infinity=False
)
fractions = st.floats(
    min_value=0.0, max_value=1.0, allow_nan=False, allow_infinity=False
)


@st.composite
def topologies(draw):
    n_users = draw(st.integers(min_value=2, max_value=500))
    n_edges = draw(st.integers(min_value=1, max_value=n_users * (n_users - 1)))
    family = draw(st.sampled_from(["gnm", "preferential"]))
    return TopologySpec(family=family, n_users=n_users, n_edges=n_edges)


@st.composite
def buckets(draw):
    weight = draw(positive)
    if draw(st.booleans()):
        return PrecisionBucket(
            weight=weight, n_samples=draw(st.integers(1, 4096))
        )
    return PrecisionBucket(weight=weight, target_ess=draw(positive))


@st.composite
def traffics(draw):
    kinds = draw(
        st.dictionaries(
            st.sampled_from(QUERY_KIND_LABELS),
            positive,
            min_size=1,
            max_size=len(QUERY_KIND_LABELS),
        )
    )
    return TrafficSpec(
        n_operations=draw(st.integers(0, 500)),
        query_kinds=kinds,
        precision_buckets=tuple(
            draw(st.lists(buckets(), min_size=1, max_size=4))
        ),
        queries_per_operation=draw(st.integers(1, 8)),
        ingest_fraction=draw(fractions),
        ingest_batch_size=draw(st.integers(1, 64)),
        repeat_fraction=draw(fractions),
        joint_flows=draw(st.integers(1, 4)),
        community_size=draw(st.integers(1, 8)),
        path_length=draw(st.integers(2, 6)),
    )


@st.composite
def specs(draw):
    return ScenarioSpec(
        name=draw(names),
        seed=draw(st.integers(0, 2**31 - 1)),
        n_messages=draw(st.integers(1, 2000)),
        description=draw(st.text(max_size=80)),
        topology=draw(topologies()),
        priors=PriorSpec(
            high_fraction=draw(fractions),
            high_alpha=draw(positive),
            high_beta=draw(positive),
            low_alpha=draw(positive),
            low_beta=draw(positive),
            learner_alpha=draw(positive),
            learner_beta=draw(positive),
        ),
        channels=ChannelMixSpec(
            plain=draw(positive),
            hashtag=draw(positive),
            url=draw(positive),
        ),
        noise=NoiseSpec(
            drop_original_probability=draw(fractions),
            offline_adoption_rate=draw(
                st.floats(0.0, 5.0, allow_nan=False, allow_infinity=False)
            ),
        ),
        traffic=draw(traffics()),
        sampling=SamplingSpec(
            burn_in=draw(st.integers(0, 500)),
            thinning=draw(st.integers(0, 8)),
            n_chains=draw(st.integers(1, 4)),
        ),
    )


class TestSpecRoundTrip:
    @given(spec=specs())
    @settings(max_examples=150, deadline=None)
    def test_property_payload_round_trip_is_identity(self, spec):
        """spec_from_payload(spec.to_payload()) == spec, for any valid spec."""
        assert spec_from_payload(spec.to_payload()) == spec

    @given(spec=specs())
    @settings(max_examples=150, deadline=None)
    def test_property_fingerprint_is_stable_under_round_trip(self, spec):
        assert spec_fingerprint(spec) == spec_fingerprint(
            spec_from_payload(spec.to_payload())
        )


class TestCompileDeterminism:
    @given(seed=st.integers(0, 2**16))
    @settings(max_examples=3, deadline=None)
    def test_property_same_spec_compiles_byte_identical(
        self, seed, tmp_path_factory
    ):
        """Compiling a spec twice yields byte-identical artifact files."""
        base = tmp_path_factory.mktemp("prop_compile")
        spec = tiny_spec(name=f"prop-{seed}", seed=seed)
        first = compile_scenario(spec, str(base / f"a{seed}"))
        second = compile_scenario(spec, str(base / f"b{seed}"))
        names = sorted(os.listdir(first.out_dir))
        assert names == sorted(os.listdir(second.out_dir))
        _, mismatch, errors = filecmp.cmpfiles(
            first.out_dir, second.out_dir, names, shallow=False
        )
        assert mismatch == [] and errors == []
