"""Fuzz tests: the tweet parser must never crash and must round-trip."""

import string

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.twitter.parsing import (
    extract_hashtags,
    extract_mentions,
    extract_urls,
    make_retweet_text,
    parse_retweet_chain,
    strip_retweet_prefixes,
)

handles = st.text(
    alphabet=string.ascii_letters + string.digits + "_", min_size=1, max_size=12
)
arbitrary_text = st.text(max_size=140)


class TestParserTotality:
    @given(text=arbitrary_text)
    @settings(max_examples=200, deadline=None)
    def test_property_never_crashes(self, text):
        extract_mentions(text)
        extract_hashtags(text)
        extract_urls(text)
        chain, body = parse_retweet_chain(text)
        assert isinstance(chain, list)
        assert isinstance(body, str)

    @given(text=arbitrary_text)
    @settings(max_examples=200, deadline=None)
    def test_property_chain_plus_body_consistent(self, text):
        """Re-composing the parsed chain around the body re-parses identically."""
        chain, body = parse_retweet_chain(text)
        rebuilt = body
        for handle in reversed(chain):
            rebuilt = make_retweet_text(handle, rebuilt)
        chain2, body2 = parse_retweet_chain(rebuilt)
        assert chain2 == chain
        assert body2 == body


class TestRoundTrips:
    @given(chain=st.lists(handles, max_size=4), body=arbitrary_text)
    @settings(max_examples=200, deadline=None)
    def test_property_compose_parse_roundtrip(self, chain, body):
        """Wrapping any body in RT prefixes parses back to the same chain,
        provided the body itself carries no RT prefix (which would merge)."""
        if parse_retweet_chain(body.lstrip())[0]:
            return  # body (post-canonicalisation) starts with RT; chains merge
        text = body
        for handle in reversed(chain):
            text = make_retweet_text(handle, text)
        parsed_chain, parsed_body = parse_retweet_chain(text)
        assert parsed_chain == chain
        # the `RT @user:` prefix regex canonicalises whitespace after the
        # colon, so a wrapped body loses its leading whitespace
        expected_body = body.lstrip() if chain else body
        assert parsed_body == expected_body
        assert strip_retweet_prefixes(text) == expected_body

    @given(chain=st.lists(handles, min_size=1, max_size=4))
    @settings(max_examples=100, deadline=None)
    def test_property_mentions_include_chain(self, chain):
        text = "plain words"
        for handle in reversed(chain):
            text = make_retweet_text(handle, text)
        mentions = extract_mentions(text)
        assert mentions == chain
