"""Property tests: the CSR kernels agree with the scalar reference BFS.

:func:`repro.graph.traversal.reachable_given_active_edges` is the seed
implementation of the pseudo-state -> active-state derivation and is kept
unchanged as the reference path.  These tests drive both implementations
with random graphs, random pseudo-states, and random source sets, and
require exact agreement -- reachability is a boolean property, so there is
no tolerance to hide behind.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.csr import reachable_csr, reachable_csr_batch
from repro.graph.generators import random_icm
from repro.graph.traversal import reachable_given_active_edges


def _random_case(seed):
    rng = np.random.default_rng(seed)
    n_nodes = int(rng.integers(2, 40))
    max_edges = n_nodes * (n_nodes - 1)
    n_edges = int(rng.integers(1, min(max_edges, 120) + 1))
    model = random_icm(n_nodes, n_edges, rng=rng, probability_range=(0.05, 0.95))
    graph = model.graph
    state = rng.random(graph.n_edges) < rng.uniform(0.1, 0.9)
    n_sources = int(rng.integers(1, min(4, n_nodes) + 1))
    source_positions = rng.choice(n_nodes, size=n_sources, replace=False)
    return graph, state, [int(p) for p in source_positions]


def _scalar_mask(graph, source_positions, state):
    nodes = graph.nodes()
    sources = [nodes[p] for p in source_positions]
    reached = reachable_given_active_edges(graph, sources, state)
    mask = np.zeros(graph.n_nodes, dtype=bool)
    for node in reached:
        mask[graph.node_position(node)] = True
    return mask


class TestScalarVectorEquivalence:
    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=60, deadline=None)
    def test_property_reachable_masks_agree(self, seed):
        graph, state, source_positions = _random_case(seed)
        vectorized = reachable_csr(graph.csr(), source_positions, state)
        np.testing.assert_array_equal(vectorized, _scalar_mask(graph, source_positions, state))

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=30, deadline=None)
    def test_property_target_early_exit_agrees(self, seed):
        graph, state, source_positions = _random_case(seed)
        full = _scalar_mask(graph, source_positions, state)
        csr = graph.csr()
        for target in range(graph.n_nodes):
            early = reachable_csr(csr, source_positions, state, target=target)
            assert bool(early[target]) == bool(full[target])

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=30, deadline=None)
    def test_property_batch_rows_agree(self, seed):
        graph, state, source_positions = _random_case(seed)
        batch = reachable_csr_batch(graph.csr(), source_positions, state)
        for row, source_position in enumerate(source_positions):
            np.testing.assert_array_equal(
                batch[row], _scalar_mask(graph, [source_position], state)
            )
