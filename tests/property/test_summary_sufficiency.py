"""Property tests: the summary really is a sufficient statistic.

Two bodies of evidence with the same summary must lead every learner to
the same answer; and the summarised Binomial likelihood must equal the
raw Bernoulli likelihood for arbitrary parameters.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.digraph import DiGraph
from repro.learning.evidence import ActivationTrace, UnattributedEvidence
from repro.learning.goyal import goyal_sink_probabilities
from repro.learning.saito_em import fit_sink_em, summary_log_likelihood
from repro.learning.summaries import SinkSummary, build_sink_summary


def _traces_from_rows(rows, shuffle_seed):
    """Expand (characteristic, count, leaks) rows into shuffled raw traces."""
    traces = []
    for characteristic, count, leaks in rows:
        members = sorted(characteristic)
        for index in range(count):
            times = {member: 0 for member in members}
            if index < leaks:
                times["k"] = 1
            traces.append(ActivationTrace(times, frozenset({members[0]})))
    rng = np.random.default_rng(shuffle_seed)
    order = rng.permutation(len(traces))
    return UnattributedEvidence([traces[i] for i in order])


@st.composite
def rows_strategy(draw):
    parents = ["A", "B", "C"]
    n_rows = draw(st.integers(min_value=1, max_value=4))
    rows = []
    for _ in range(n_rows):
        size = draw(st.integers(min_value=1, max_value=3))
        members = frozenset(draw(st.permutations(parents))[:size])
        count = draw(st.integers(min_value=1, max_value=30))
        leaks = draw(st.integers(min_value=0, max_value=count))
        rows.append((members, count, leaks))
    return rows


class TestSufficiency:
    @given(rows=rows_strategy(), seed=st.integers(min_value=0, max_value=20))
    @settings(max_examples=40, deadline=None)
    def test_property_order_invariance(self, rows, seed):
        """Evidence order cannot matter: any shuffle gives the same summary."""
        graph = DiGraph(edges=[("A", "k"), ("B", "k"), ("C", "k")])
        summary_a = build_sink_summary(graph, _traces_from_rows(rows, 0), "k")
        summary_b = build_sink_summary(graph, _traces_from_rows(rows, seed), "k")
        rows_a = [(r.characteristic, r.count, r.leaks) for r in summary_a.rows]
        rows_b = [(r.characteristic, r.count, r.leaks) for r in summary_b.rows]
        assert rows_a == rows_b

    @given(rows=rows_strategy())
    @settings(max_examples=40, deadline=None)
    def test_property_learners_depend_only_on_summary(self, rows):
        graph = DiGraph(edges=[("A", "k"), ("B", "k"), ("C", "k")])
        direct = SinkSummary.from_counts("k", ["A", "B", "C"], rows)
        derived = build_sink_summary(graph, _traces_from_rows(rows, 3), "k")
        # Goyal: identical estimates on shared parents
        direct_probabilities = dict(
            zip(direct.parents, goyal_sink_probabilities(direct))
        )
        derived_probabilities = dict(
            zip(derived.parents, goyal_sink_probabilities(derived))
        )
        for parent in derived.parents:
            assert derived_probabilities[parent] == pytest.approx(
                direct_probabilities[parent]
            )

    @given(
        rows=rows_strategy(),
        p0=st.floats(min_value=0.05, max_value=0.95),
        p1=st.floats(min_value=0.05, max_value=0.95),
        p2=st.floats(min_value=0.05, max_value=0.95),
    )
    @settings(max_examples=60, deadline=None)
    def test_property_binomial_equals_bernoulli_likelihood(
        self, rows, p0, p1, p2
    ):
        summary = SinkSummary.from_counts("k", ["A", "B", "C"], rows)
        point = {"A": p0, "B": p1, "C": p2}
        vector = np.array([point[parent] for parent in summary.parents])
        summarised = summary_log_likelihood(summary, vector)
        raw = 0.0
        for characteristic, count, leaks in rows:
            no_leak = 1.0
            for member in characteristic:
                no_leak *= 1.0 - point[member]
            p = min(max(1.0 - no_leak, 1e-12), 1.0 - 1e-12)
            raw += leaks * math.log(p) + (count - leaks) * math.log(1.0 - p)
        assert summarised == pytest.approx(raw, rel=1e-6, abs=1e-6)
