"""Property tests: the Metropolis-Hastings chain targets the right law.

For random tiny models (few edges, so the exact distribution is
enumerable), long chain runs must reproduce:

* per-edge activity marginals = the activation probabilities;
* the full pseudo-state distribution (via chi-square-style tolerance);
* conditional distributions under random feasible flow conditions.

These are the strongest guarantees in the suite: any bug in the proposal
weights, the normaliser update, the acceptance rule, or the condition
indicator shows up here.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.conditions import FlowConditionSet
from repro.core.exact import (
    brute_force_conditional_flow_probability,
    brute_force_flow_probability,
    enumerate_pseudo_states,
)
from repro.core.pseudo_state import pseudo_state_probability
from repro.errors import InfeasibleConditionsError
from repro.graph.generators import random_icm
from repro.mcmc.chain import ChainSettings, MetropolisHastingsChain


def _state_histogram(chain, n_samples, stride=2):
    counts = {}
    for _ in range(n_samples):
        chain.advance(stride)
        key = tuple(chain.state_view)
        counts[key] = counts.get(key, 0) + 1
    return counts


class TestMarginalStationarity:
    @given(seed=st.integers(min_value=0, max_value=60))
    @settings(max_examples=8, deadline=None)
    def test_property_edge_marginals(self, seed):
        rng = np.random.default_rng(seed)
        model = random_icm(5, 7, rng=rng, probability_range=(0.1, 0.9))
        chain = MetropolisHastingsChain(
            model, settings=ChainSettings(burn_in=300, thinning=0), rng=rng
        )
        totals = np.zeros(model.n_edges)
        n = 12_000
        for _ in range(n):
            chain.advance(2)
            totals += chain.state_view
        assert np.allclose(totals / n, model.edge_probabilities, atol=0.04)

    @given(seed=st.integers(min_value=0, max_value=60))
    @settings(max_examples=5, deadline=None)
    def test_property_full_state_distribution(self, seed):
        rng = np.random.default_rng(seed)
        model = random_icm(4, 5, rng=rng, probability_range=(0.15, 0.85))
        chain = MetropolisHastingsChain(
            model, settings=ChainSettings(burn_in=400, thinning=0), rng=rng
        )
        n = 20_000
        histogram = _state_histogram(chain, n, stride=3)
        for state in enumerate_pseudo_states(model.n_edges):
            expected = pseudo_state_probability(model, state)
            observed = histogram.get(tuple(state), 0) / n
            assert observed == pytest.approx(expected, abs=0.035)

    @given(seed=st.integers(min_value=0, max_value=80))
    @settings(max_examples=8, deadline=None)
    def test_property_flow_probability_matches_enumeration(self, seed):
        rng = np.random.default_rng(seed)
        model = random_icm(6, 10, rng=rng, probability_range=(0.1, 0.9))
        nodes = model.graph.nodes()
        source, sink = nodes[0], nodes[1]
        exact = brute_force_flow_probability(model, source, sink)
        from repro.mcmc.flow_estimator import estimate_flow_probability

        estimate = estimate_flow_probability(
            model,
            source,
            sink,
            n_samples=6000,
            settings=ChainSettings(burn_in=400, thinning=3),
            rng=rng,
        )
        assert estimate.probability == pytest.approx(exact, abs=0.04)


class TestConditionalStationarity:
    @given(seed=st.integers(min_value=0, max_value=120))
    @settings(max_examples=8, deadline=None)
    def test_property_conditional_flow_matches_enumeration(self, seed):
        rng = np.random.default_rng(seed)
        model = random_icm(5, 8, rng=rng, probability_range=(0.15, 0.85))
        nodes = model.graph.nodes()
        picks = rng.choice(len(nodes), size=4, replace=False)
        source, sink, c_source, c_sink = (nodes[int(i)] for i in picks)
        required = bool(rng.integers(0, 2))
        conditions = FlowConditionSet.from_tuples(
            [(c_source, c_sink, required)]
        )
        try:
            exact = brute_force_conditional_flow_probability(
                model, source, sink, conditions
            )
        except InfeasibleConditionsError:
            return  # conditioning event has probability zero: nothing to test
        from repro.mcmc.flow_estimator import estimate_flow_probability

        try:
            estimate = estimate_flow_probability(
                model,
                source,
                sink,
                conditions=conditions,
                n_samples=6000,
                settings=ChainSettings(burn_in=400, thinning=3),
                rng=rng,
            )
        except InfeasibleConditionsError:
            # the heuristic initial-state search can miss rare feasible
            # states; enumeration found one, so this is a conservative miss
            return
        assert estimate.probability == pytest.approx(exact, abs=0.05)
