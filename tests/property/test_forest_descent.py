"""Property tests: forest descent agrees with the scalar sum tree.

:class:`repro.mcmc.forest.SumTreeForest` replicates the flat layout of
:class:`repro.mcmc.sum_tree.SumTree` row-wise and promises that its
vectorised root-to-leaf walk selects *bit-identical* leaves when fed
the same uniforms -- including the redraw cases (a walk falling off
the populated leaf prefix of a non-power-of-two tree, or landing on a
zero-weight leaf).  These tests drive both implementations with random
weight vectors (zeros forced in) and identical uniform streams and
require exact agreement.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SamplingError
from repro.mcmc.forest import SumTreeForest
from repro.mcmc.sum_tree import SumTree

# Weight vectors with awkward sizes (non-power-of-two prefixes) and a
# healthy dose of exact zeros, so redraw paths actually execute.
weight_vectors = st.lists(
    st.one_of(
        st.just(0.0),
        st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
    ),
    min_size=1,
    max_size=37,
).filter(lambda ws: sum(ws) > 0.0)


def _scalar_descend(tree: SumTree, target: float) -> int:
    """The scalar root-to-leaf walk over SumTree's documented layout."""
    flat = tree.flat
    position = 1
    while position < tree.capacity:
        left = 2 * position
        left_sum = flat[left]
        if target < left_sum:
            position = left
        else:
            target -= left_sum
            position = left + 1
    return position - tree.capacity


class TestDescentEquivalence:
    @given(weights=weight_vectors, uniform=st.floats(min_value=0.0, max_value=1.0, exclude_max=True))
    @settings(max_examples=200, deadline=None)
    def test_descend_matches_scalar_walk(self, weights, uniform):
        scalar = SumTree(weights)
        forest = SumTreeForest([weights])
        target = uniform * scalar.total
        positions = forest.descend(np.array([target]))
        assert positions[0] - forest.capacity == _scalar_descend(scalar, target)

    @given(weights=weight_vectors, seed=st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=200, deadline=None)
    def test_sample_matches_sum_tree_sample(self, weights, seed):
        """Same generator seed => same selected leaf, redraws included."""
        scalar = SumTree(weights)
        forest = SumTreeForest([weights])
        scalar_rng = np.random.default_rng(seed)
        forest_rng = np.random.default_rng(seed)
        for _ in range(5):
            expected = scalar.sample(scalar_rng)
            got = forest.sample(lambda rows: forest_rng.random(rows.size))
            assert got.tolist() == [expected]
            # The redraw loops must also have consumed the same number
            # of uniforms, or the next draw would diverge.
            assert scalar_rng.random() == forest_rng.random()

    @given(weights=weight_vectors, seed=st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=100, deadline=None)
    def test_multi_row_sampling_is_per_row_independent(self, weights, seed):
        """Stacking K copies does not change any single row's draws."""
        n_rows = 3
        forest = SumTreeForest([weights] * n_rows)
        scalar = SumTree(weights)
        row_rngs = [np.random.default_rng(seed + row) for row in range(n_rows)]

        def next_uniforms(rows):
            return np.array([row_rngs[row].random() for row in rows])

        got = forest.sample(next_uniforms)
        for row in range(n_rows):
            rng = np.random.default_rng(seed + row)
            assert got[row] == scalar.sample(rng)

    def test_off_prefix_walk_redraws(self):
        """A walk carrying the full mass falls off the populated prefix.

        capacity=4, leaves [1, 1, 1, 0(pad)]: a target equal to the
        total (the floating-point hazard the redraw loop guards, here
        triggered exactly via a callback-served u = 1.0) descends
        right at every level into the padding slot, which the scalar
        tree rejects and redraws -- the forest must do exactly the
        same and consume a second uniform for that row only.
        """
        weights = [1.0, 1.0, 1.0]
        scalar = SumTree(weights)
        forest = SumTreeForest([weights])
        assert _scalar_descend(scalar, scalar.total) == 3  # the pad leaf
        served = []

        def next_uniforms(rows):
            served.append(rows.size)
            return np.array([1.0] if len(served) == 1 else [0.5])

        got = forest.sample(next_uniforms)
        assert served == [1, 1]
        assert got.tolist() == [1]  # 0.5 * 3.0 = 1.5 -> second leaf

    def test_zero_weight_leaf_redraws(self):
        """A walk landing on an exact-zero trailing leaf must redraw."""
        weights = [0.5, 0.0]
        scalar = SumTree(weights)
        forest = SumTreeForest([weights])
        assert _scalar_descend(scalar, scalar.total) == 1  # the zero leaf
        served = []

        def next_uniforms(rows):
            served.append(rows.size)
            return np.array([1.0] if len(served) == 1 else [0.5])

        got = forest.sample(next_uniforms)
        assert served == [1, 1]
        assert got.tolist() == [0]

    def test_zero_total_raises_like_sum_tree(self):
        with pytest.raises(SamplingError):
            SumTreeForest([[0.0, 0.0], [1.0, 1.0]]).sample(
                lambda rows: np.full(rows.size, 0.5)
            )
        with pytest.raises(SamplingError):
            SumTree([0.0, 0.0]).sample(np.random.default_rng(0))


class TestUpdateEquivalence:
    @given(
        weights=weight_vectors,
        data=st.data(),
    )
    @settings(max_examples=100, deadline=None)
    def test_updates_keep_trees_identical(self, weights, data):
        scalar = SumTree(weights)
        forest = SumTreeForest([weights])
        for _ in range(4):
            index = data.draw(st.integers(min_value=0, max_value=len(weights) - 1))
            value = data.draw(st.floats(min_value=0.0, max_value=10.0, allow_nan=False))
            scalar.update(index, value)
            forest.update([0], [index], [value])
            assert forest.trees[0].tolist() == scalar.flat
