"""Property: Prometheus label-value escaping round-trips any string."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.metrics import (
    MetricsRegistry,
    _escape_label_value,
    _unescape_label_value,
)

#: Arbitrary label values, biased toward the characters the escaper
#: must handle (backslash, double quote, newline).
label_values = st.text(max_size=64) | st.text(
    alphabet='\\"\n' + "ab", max_size=16
)


class TestEscapeRoundTrip:
    @given(value=label_values)
    @settings(max_examples=300, deadline=None)
    def test_property_escape_unescape_roundtrip(self, value):
        """Any string -- backslashes, quotes, newlines included --
        survives escape followed by unescape unchanged."""
        assert _unescape_label_value(_escape_label_value(value)) == value

    @given(value=label_values)
    @settings(max_examples=300, deadline=None)
    def test_property_escaped_form_is_exposition_safe(self, value):
        """The escaped form never contains a raw newline or a raw
        double quote, so it can sit inside `name="..."` on one
        exposition line."""
        escaped = _escape_label_value(value)
        assert "\n" not in escaped
        assert '"' not in escaped.replace('\\"', "")

    @given(value=label_values)
    @settings(max_examples=200, deadline=None)
    def test_property_rendered_line_stays_single_line(self, value):
        """A counter labelled with the arbitrary value renders as
        single-line exposition text that still carries the escape."""
        registry = MetricsRegistry(enabled=True)
        counter = registry.counter(
            "events_total", "Events.", labels=("kind",)
        )
        counter.inc(kind=value)
        text = registry.render_prometheus()
        # split on "\n" specifically: the exposition format only cares
        # about real newlines (str.splitlines would also split on
        # control characters like \x1e that are legal in label values)
        sample_lines = [
            line
            for line in text.split("\n")
            if line.startswith("events_total{")
        ]
        assert len(sample_lines) == 1
        assert sample_lines[0].endswith(" 1")


class TestUnescapeStrictness:
    def test_lone_trailing_backslash_rejected(self):
        import pytest

        with pytest.raises(ValueError, match="lone trailing backslash"):
            _unescape_label_value("abc\\")

    def test_unknown_escape_rejected(self):
        import pytest

        with pytest.raises(ValueError, match="invalid escape"):
            _unescape_label_value("\\t")
