"""Property tests: the X-Repro-Trace wire format round-trips exactly.

The header is the only thing that crosses the process boundary, so the
encode/decode pair must be an exact identity on every valid context --
any asymmetry silently detaches server spans from the client's trace.
The fuzz side checks the lenient parser never raises and only accepts
strings the strict parser also accepts.
"""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.obs.context import (
    TraceContext,
    context_from_header,
    context_to_header,
    parse_trace_header,
)

trace_ids = st.text(alphabet="0123456789abcdef", min_size=32, max_size=32).filter(
    lambda s: s != "0" * 32
)
span_ids = st.integers(min_value=0, max_value=(1 << 64) - 1)
contexts = st.builds(
    TraceContext, trace_id=trace_ids, span_id=span_ids, sampled=st.booleans()
)


class TestRoundTrip:
    @given(context=contexts)
    def test_encode_decode_is_identity(self, context):
        assert context_from_header(context_to_header(context)) == context

    @given(context=contexts)
    def test_lenient_parser_agrees_on_valid_headers(self, context):
        assert parse_trace_header(context_to_header(context)) == context

    @given(context=contexts)
    def test_header_shape(self, context):
        header = context_to_header(context)
        version, trace_id, span_hex, flags = header.split("-")
        assert version == "00"
        assert trace_id == context.trace_id
        assert int(span_hex, 16) == context.span_id
        assert flags == ("01" if context.sampled else "00")


class TestMalformed:
    @given(text=st.text(max_size=80))
    def test_lenient_parser_never_raises(self, text):
        result = parse_trace_header(text)
        if result is not None:
            # Anything accepted must round-trip through the strict pair.
            assert context_from_header(context_to_header(result)) == result

    @pytest.mark.parametrize(
        "header",
        [
            "",
            "00",
            "00-" + "0" * 32 + "-" + "0" * 16 + "-01",  # all-zero trace
            "01-" + "a" * 32 + "-" + "b" * 16 + "-01",  # wrong version
            "00-" + "a" * 31 + "-" + "b" * 16 + "-01",  # short trace id
            "00-" + "a" * 32 + "-" + "b" * 15 + "-01",  # short span id
            "00-" + "a" * 32 + "-" + "b" * 16 + "-02",  # bad flags
            "00-" + "A" * 32 + "-" + "b" * 16 + "-01",  # uppercase hex
        ],
    )
    def test_strict_parser_rejects(self, header):
        with pytest.raises(ValueError):
            context_from_header(header)
        assert parse_trace_header(header) is None
