"""Streaming == batch: any legal interleaving of growth and evidence.

The streaming invariant pinned exactly in
``tests/service/test_ingest.py`` is generalised here with hypothesis:
for ANY interleaving of ``absorb`` / ``add_node`` / ``add_edge``
operations, the online trainer's posterior equals
:func:`~repro.learning.attributed.train_beta_icm` run over the final
topology with the accumulated evidence -- and two seeded services, one
fed the streamed snapshot and one the batch retrain, answer queries
bit-for-bit identically.

The one semantic constraint the generator honours: an observation may
only activate nodes whose *final* out-edge set already exists when the
observation is absorbed.  (An edge added later starts at the prior --
earlier observations are not retroactively evidence about it -- while
a batch retrain over the final graph would count them; the paper's
counting rule, Section II-A, is defined against a fixed topology.)
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.beta_icm import BetaICM
from repro.extensions.online import OnlineBetaICMTrainer
from repro.graph.digraph import DiGraph
from repro.learning.attributed import train_beta_icm
from repro.learning.evidence import AttributedEvidence, AttributedObservation
from repro.mcmc.chain import ChainSettings
from repro.service.api import FlowQueryService
from repro.service.queries import FlowQuery

NODES = ("a", "b", "c", "d")
ALL_EDGES = tuple(
    (src, dst) for src in NODES for dst in NODES if src != dst
)


@st.composite
def operation_sequence(draw):
    """A legal interleaving of add_node / add_edge / absorb operations."""
    n_edges = draw(st.integers(min_value=1, max_value=6))
    final_edges = draw(
        st.permutations(ALL_EDGES).map(lambda edges: edges[:n_edges])
    )
    out_degree = {node: 0 for node in NODES}
    for src, _ in final_edges:
        out_degree[src] += 1

    ops = []
    added_nodes = []
    added_edges = []
    next_edge = 0
    pending_out = dict(out_degree)
    n_ops = draw(st.integers(min_value=4, max_value=12))
    for _ in range(n_ops):
        choices = []
        if len(added_nodes) < len(NODES):
            choices.append("add_node")
        if next_edge < len(final_edges):
            src, dst = final_edges[next_edge]
            if src in added_nodes and dst in added_nodes:
                choices.append("add_edge")
        # nodes whose final out-edge set is complete may carry evidence
        safe = [
            node
            for node in added_nodes
            if pending_out[node] == 0
        ]
        if safe:
            choices.append("absorb")
        if not choices:
            break
        op = draw(st.sampled_from(choices))
        if op == "add_node":
            node = NODES[len(added_nodes)]
            added_nodes.append(node)
            ops.append(("add_node", node))
        elif op == "add_edge":
            src, dst = final_edges[next_edge]
            next_edge += 1
            pending_out[src] -= 1
            added_edges.append((src, dst))
            ops.append(("add_edge", src, dst))
        else:
            active = draw(
                st.sets(st.sampled_from(safe), min_size=1).map(frozenset)
            )
            sources = draw(
                st.sets(
                    st.sampled_from(sorted(active)), min_size=1
                ).map(frozenset)
            )
            eligible = [
                edge
                for edge in added_edges
                if edge[0] in active and edge[1] in active
            ]
            if eligible:
                active_edges = draw(
                    st.sets(st.sampled_from(eligible)).map(frozenset)
                )
            else:
                active_edges = frozenset()
            ops.append(
                (
                    "absorb",
                    AttributedObservation(
                        sources=sources,
                        active_nodes=active,
                        active_edges=active_edges,
                    ),
                )
            )
    return ops


def replay(ops):
    """Run the interleaving; return the trainer, final graph, evidence."""
    trainer = OnlineBetaICMTrainer()
    graph = DiGraph()
    observations = []
    for op in ops:
        if op[0] == "add_node":
            trainer.add_node(op[1])
            graph.add_node(op[1])
        elif op[0] == "add_edge":
            trainer.add_edge(op[1], op[2])
            graph.add_edge(op[1], op[2])
        else:
            trainer.absorb(op[1])
            observations.append(op[1])
    return trainer, graph, observations


class TestInterleavingEquivalence:
    @given(ops=operation_sequence())
    @settings(max_examples=80, deadline=None)
    def test_property_posterior_matches_batch_retrain(self, ops):
        trainer, graph, observations = replay(ops)
        batch = train_beta_icm(graph, AttributedEvidence(observations))
        streamed = trainer.snapshot()
        for edge_index in range(graph.n_edges):
            pair = graph.edge(edge_index).as_pair()
            assert streamed.edge_parameters(*pair) == (
                batch.edge_parameters(*pair)
            )

    @given(ops=operation_sequence(), seed=st.integers(0, 2**16))
    @settings(max_examples=15, deadline=None)
    def test_property_service_queries_match_bit_for_bit(self, ops, seed):
        trainer, graph, observations = replay(ops)
        if graph.n_edges == 0:
            return
        batch = train_beta_icm(graph, AttributedEvidence(observations))
        edge = graph.edge(0).as_pair()
        query = FlowQuery.marginal(edge[0], edge[1])
        settings_ = ChainSettings(burn_in=10, thinning=1)

        streamed_service = FlowQueryService(settings=settings_, rng=seed)
        streamed_service.register("m", trainer.snapshot())
        streamed_answer = streamed_service.query("m", query, n_samples=16)

        batch_service = FlowQueryService(settings=settings_, rng=seed)
        batch_service.register("m", batch)
        batch_answer = batch_service.query("m", query, n_samples=16)

        assert streamed_answer.value == batch_answer.value
        assert streamed_answer.ess == batch_answer.ess

    def test_growth_after_evidence_starts_new_edges_at_prior(self):
        """The semantic the generator encodes, stated directly."""
        trainer = OnlineBetaICMTrainer()
        for node in ("a", "b", "c"):
            trainer.add_node(node)
        trainer.add_edge("a", "b")
        trainer.absorb(
            AttributedObservation(
                sources=frozenset({"a"}),
                active_nodes=frozenset({"a", "b"}),
                active_edges=frozenset({("a", "b")}),
            )
        )
        trainer.add_edge("a", "c")  # after the evidence
        snapshot = trainer.snapshot()
        assert snapshot.edge_parameters("a", "b") == (2.0, 1.0)
        # the late edge never saw the earlier observation
        assert snapshot.edge_parameters("a", "c") == (1.0, 1.0)

    def test_snapshot_min_param_keeps_models_queryable(self):
        trainer = OnlineBetaICMTrainer()
        trainer.add_node("a")
        trainer.add_node("b")
        trainer.add_edge("a", "b")
        snapshot = trainer.snapshot()
        assert isinstance(snapshot, BetaICM)
        assert np.all(np.asarray(snapshot.alphas) > 0.0)
        assert np.all(np.asarray(snapshot.betas) > 0.0)
