"""The ``repro-loadgen`` command-line interface."""

import json
import os

import pytest

from repro.scenarios.cli import main
from repro.scenarios.spec import save_spec

from tests.scenarios.conftest import tiny_spec


@pytest.fixture(scope="module")
def spec_path(tmp_path_factory):
    path = tmp_path_factory.mktemp("cli") / "tiny.json"
    save_spec(tiny_spec(), str(path))
    return str(path)


@pytest.fixture(scope="module")
def cli_compiled_dir(spec_path, tmp_path_factory):
    out_dir = str(tmp_path_factory.mktemp("cli") / "compiled")
    assert main(["compile", spec_path, "--out-dir", out_dir]) == 0
    return out_dir


class TestCompile:
    def test_writes_all_artifacts(self, cli_compiled_dir):
        names = set(os.listdir(cli_compiled_dir))
        assert {
            "manifest.json",
            "trace.jsonl",
            "events.jsonl",
            "model_retweet.json",
            "model_hashtag.json",
            "model_url.json",
        } <= names

    def test_prints_summary_table(self, spec_path, tmp_path, capsys):
        out_dir = str(tmp_path / "out")
        assert main(["compile", spec_path, "--out-dir", out_dir]) == 0
        output = capsys.readouterr().out
        assert "scenario    tiny" in output
        assert "fingerprint" in output
        assert "operations" in output

    def test_json_summary(self, spec_path, tmp_path, capsys):
        out_dir = str(tmp_path / "out")
        assert main(["compile", spec_path, "--out-dir", out_dir, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["scenario"] == "tiny"
        assert payload["counts"]["n_operations"] == 25

    def test_bad_spec_exits_2(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"name": "x", "surprise": 1}))
        code = main(["compile", str(bad), "--out-dir", str(tmp_path / "o")])
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_missing_spec_file_exits_2(self, tmp_path, capsys):
        code = main([
            "compile", str(tmp_path / "nope.json"),
            "--out-dir", str(tmp_path / "o"),
        ])
        assert code == 2


class TestReplay:
    def test_in_process_replay_of_compiled_dir(self, cli_compiled_dir, capsys):
        assert main(["replay", cli_compiled_dir, "--max-ops", "5"]) == 0
        output = capsys.readouterr().out
        assert "operations  5 (0 errors)" in output
        assert "p50 ms" in output

    def test_json_report(self, cli_compiled_dir, capsys):
        code = main([
            "replay", cli_compiled_dir, "--max-ops", "3", "--json",
        ])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["n_operations"] == 3
        assert payload["n_errors"] == 0
        assert payload["kinds"]

    def test_out_writes_report_file(self, cli_compiled_dir, tmp_path):
        report_path = tmp_path / "report.json"
        code = main([
            "replay", cli_compiled_dir, "--max-ops", "3",
            "--out", str(report_path),
        ])
        assert code == 0
        payload = json.loads(report_path.read_text())
        assert payload["n_operations"] == 3

    def test_trace_file_without_manifest_exits_2(self, tmp_path, capsys):
        trace = tmp_path / "trace.jsonl"
        trace.write_text('{"op": "ingest", "events": [{}]}\n')
        assert main(["replay", str(trace)]) == 2
        assert "manifest" in capsys.readouterr().err

    def test_corrupt_trace_exits_2(self, cli_compiled_dir, tmp_path, capsys):
        trace = tmp_path / "trace.jsonl"
        trace.write_text("not json\n")
        code = main([
            "replay", str(trace),
            "--manifest", os.path.join(cli_compiled_dir, "manifest.json"),
        ])
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_no_command_prints_help_and_exits_2(self, capsys):
        assert main([]) == 2
        assert "repro-loadgen" in capsys.readouterr().out
