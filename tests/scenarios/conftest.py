"""Shared scenario fixtures: one tiny spec, compiled once per session."""

import pytest

from repro.scenarios.compiler import compile_scenario
from repro.scenarios.spec import (
    PrecisionBucket,
    SamplingSpec,
    ScenarioSpec,
    TopologySpec,
    TrafficSpec,
)


def tiny_spec(name="tiny", seed=3, **traffic_overrides):
    """A seconds-scale spec exercising every operation type."""
    traffic = dict(
        n_operations=25,
        precision_buckets=(
            PrecisionBucket(weight=3.0, n_samples=8),
            PrecisionBucket(weight=1.0, n_samples=16),
        ),
        queries_per_operation=2,
        ingest_fraction=0.2,
        ingest_batch_size=4,
        repeat_fraction=0.2,
    )
    traffic.update(traffic_overrides)
    return ScenarioSpec(
        name=name,
        seed=seed,
        n_messages=30,
        topology=TopologySpec(family="gnm", n_users=30, n_edges=120),
        traffic=TrafficSpec(**traffic),
        sampling=SamplingSpec(burn_in=10, thinning=1),
    )


@pytest.fixture(scope="session")
def compiled_tiny(tmp_path_factory):
    """The tiny spec compiled once, shared by compiler/loadgen/CLI tests."""
    out_dir = tmp_path_factory.mktemp("compiled") / "tiny"
    return compile_scenario(tiny_spec(), str(out_dir))
