"""ScenarioSpec: strict parsing, round-trips, fingerprints, files."""

import dataclasses
import json
from pathlib import Path

import pytest

from repro.errors import ReproError, ScenarioError
from repro.scenarios.spec import (
    QUERY_KIND_LABELS,
    SPEC_FORMAT_VERSION,
    ChannelMixSpec,
    NoiseSpec,
    PrecisionBucket,
    PriorSpec,
    SamplingSpec,
    ScenarioSpec,
    TopologySpec,
    TrafficSpec,
    canonical_json,
    load_spec,
    save_spec,
    spec_fingerprint,
    spec_from_payload,
)

from tests.scenarios.conftest import tiny_spec


class TestRoundTrip:
    def test_payload_round_trip_is_identity(self):
        spec = tiny_spec()
        payload = json.loads(json.dumps(spec.to_payload()))
        assert spec_from_payload(payload) == spec
        assert spec_from_payload(payload).to_payload() == spec.to_payload()

    def test_defaults_round_trip(self):
        spec = ScenarioSpec(name="defaults")
        assert spec_from_payload(spec.to_payload()) == spec

    def test_empty_payload_sections_take_defaults(self):
        spec = spec_from_payload({"name": "bare"})
        assert spec.topology == TopologySpec()
        assert spec.traffic == TrafficSpec()
        assert spec.sampling == SamplingSpec()

    def test_scenario_error_is_a_repro_error(self):
        assert issubclass(ScenarioError, ReproError)


class TestFingerprint:
    def test_stable_across_key_order(self):
        spec = tiny_spec()
        assert spec_fingerprint(spec) == spec_fingerprint(
            spec_from_payload(
                json.loads(canonical_json(spec.to_payload()))
            )
        )

    def test_changes_with_any_field(self):
        spec = tiny_spec()
        assert spec_fingerprint(spec) != spec_fingerprint(
            dataclasses.replace(spec, seed=spec.seed + 1)
        )
        assert spec_fingerprint(spec) != spec_fingerprint(
            dataclasses.replace(spec, n_messages=spec.n_messages + 1)
        )


class TestStrictParsing:
    def test_rejects_unknown_top_level_field(self):
        payload = tiny_spec().to_payload()
        payload["surprise"] = 1
        with pytest.raises(ScenarioError, match="unknown field.*surprise"):
            spec_from_payload(payload)

    @pytest.mark.parametrize(
        "section", ["topology", "priors", "channels", "noise", "traffic", "sampling"]
    )
    def test_rejects_unknown_nested_field(self, section):
        payload = tiny_spec().to_payload()
        payload[section]["surprise"] = 1
        with pytest.raises(ScenarioError, match="unknown field"):
            spec_from_payload(payload)

    def test_rejects_wrong_format_version(self):
        payload = tiny_spec().to_payload()
        payload["format_version"] = SPEC_FORMAT_VERSION + 1
        with pytest.raises(ScenarioError, match="format_version"):
            spec_from_payload(payload)

    def test_rejects_non_object_payload(self):
        with pytest.raises(ScenarioError, match="expected an object"):
            spec_from_payload([1, 2, 3])

    def test_rejects_bool_where_int_expected(self):
        payload = tiny_spec().to_payload()
        payload["seed"] = True
        with pytest.raises(ScenarioError, match="expected an integer"):
            spec_from_payload(payload)

    def test_rejects_string_where_number_expected(self):
        payload = tiny_spec().to_payload()
        payload["priors"]["high_fraction"] = "0.2"
        with pytest.raises(ScenarioError, match="expected a number"):
            spec_from_payload(payload)

    def test_rejects_unknown_query_kind(self):
        payload = tiny_spec().to_payload()
        payload["traffic"]["query_kinds"] = {"teleport": 1.0}
        with pytest.raises(ScenarioError, match="unknown"):
            spec_from_payload(payload)

    def test_rejects_non_list_precision_buckets(self):
        payload = tiny_spec().to_payload()
        payload["traffic"]["precision_buckets"] = {"weight": 1.0}
        with pytest.raises(ScenarioError, match="expected a list"):
            spec_from_payload(payload)


class TestValidation:
    def test_name_must_be_slug(self):
        with pytest.raises(ScenarioError, match="spec name"):
            ScenarioSpec(name="")
        with pytest.raises(ScenarioError, match="spec name"):
            ScenarioSpec(name="has space")

    def test_topology_bounds(self):
        with pytest.raises(ScenarioError, match="n_users"):
            TopologySpec(n_users=1, n_edges=1)
        with pytest.raises(ScenarioError, match="n_edges"):
            TopologySpec(n_users=3, n_edges=7)  # max is 3*2 = 6
        with pytest.raises(ScenarioError, match="family"):
            TopologySpec(family="smallworld")

    def test_priors_must_be_positive(self):
        with pytest.raises(ScenarioError, match="positive"):
            PriorSpec(low_alpha=0.0)
        with pytest.raises(ScenarioError, match="high_fraction"):
            PriorSpec(high_fraction=1.5)

    def test_channel_weights(self):
        with pytest.raises(ScenarioError, match="non-negative"):
            ChannelMixSpec(plain=-0.1)
        with pytest.raises(ScenarioError, match="not all be zero"):
            ChannelMixSpec(plain=0.0, hashtag=0.0, url=0.0)

    def test_noise_ranges(self):
        with pytest.raises(ScenarioError, match="drop_original_probability"):
            NoiseSpec(drop_original_probability=2.0)
        with pytest.raises(ScenarioError, match="offline_adoption_rate"):
            NoiseSpec(offline_adoption_rate=-1.0)

    def test_bucket_needs_exactly_one_precision_knob(self):
        with pytest.raises(ScenarioError, match="exactly one"):
            PrecisionBucket(weight=1.0)
        with pytest.raises(ScenarioError, match="exactly one"):
            PrecisionBucket(weight=1.0, n_samples=8, target_ess=10.0)
        PrecisionBucket(weight=1.0, n_samples=8)
        PrecisionBucket(weight=1.0, target_ess=10.0)

    def test_bucket_payload_omits_unset_knob(self):
        assert PrecisionBucket(n_samples=8).to_payload() == {
            "weight": 1.0,
            "n_samples": 8,
        }
        assert PrecisionBucket(target_ess=9.5).to_payload() == {
            "weight": 1.0,
            "target_ess": 9.5,
        }

    def test_traffic_bounds(self):
        with pytest.raises(ScenarioError, match="queries_per_operation"):
            TrafficSpec(queries_per_operation=0)
        with pytest.raises(ScenarioError, match="ingest_fraction"):
            TrafficSpec(ingest_fraction=1.5)
        with pytest.raises(ScenarioError, match="path_length"):
            TrafficSpec(path_length=1)
        with pytest.raises(ScenarioError, match="precision_buckets"):
            TrafficSpec(precision_buckets=())

    def test_sampling_bounds(self):
        with pytest.raises(ScenarioError, match="burn_in"):
            SamplingSpec(burn_in=-1)
        with pytest.raises(ScenarioError, match="n_chains"):
            SamplingSpec(n_chains=0)

    def test_ingest_needs_messages(self):
        with pytest.raises(ScenarioError, match="n_messages"):
            ScenarioSpec(
                name="empty-corpus",
                n_messages=0,
                traffic=TrafficSpec(ingest_fraction=0.5),
            )

    def test_all_query_kind_labels_are_renderable(self):
        # every label the schema accepts must map onto the payload codec
        assert set(QUERY_KIND_LABELS) == {
            "marginal", "conditional", "joint", "community", "path", "impact",
        }


class TestFiles:
    def test_save_load_round_trip(self, tmp_path):
        spec = tiny_spec()
        path = str(tmp_path / "spec.json")
        save_spec(spec, path)
        assert load_spec(path) == spec

    def test_load_rejects_malformed_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(ScenarioError, match="unparseable JSON"):
            load_spec(str(path))

    def test_load_yaml_when_available(self, tmp_path):
        yaml = pytest.importorskip("yaml")
        spec = tiny_spec()
        path = tmp_path / "spec.yaml"
        path.write_text(yaml.safe_dump(spec.to_payload()))
        assert load_spec(str(path)) == spec

    def test_committed_examples_parse(self):
        scenarios = Path(__file__).resolve().parents[2] / "scenarios"
        for name in (
            "paper_scale", "users_100k", "ingest_heavy", "cache_hostile",
        ):
            spec = load_spec(str(scenarios / f"{name}.json"))
            assert spec.name == name.replace("_", "-")

    def test_committed_100k_example_is_gnm(self):
        # preferential attachment is O(n^2); the 100k example must not use it
        scenarios = Path(__file__).resolve().parents[2] / "scenarios"
        spec = load_spec(str(scenarios / "users_100k.json"))
        assert spec.topology.family == "gnm"
        assert spec.topology.n_users == 100_000
