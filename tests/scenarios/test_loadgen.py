"""Load harness: closed-loop replay, targets, percentile reports."""

import json
import threading
import time
import urllib.request

import pytest

from repro.errors import ScenarioError, ServiceError
from repro.scenarios.compiler import read_trace
from repro.scenarios.loadgen import (
    HttpTarget,
    InProcessTarget,
    LoadReport,
    _op_kind,
    replay,
)
from repro.service.ingest import StreamIngestor
from repro.service.server import make_server


@pytest.fixture(scope="module")
def tiny_ops(compiled_tiny):
    return read_trace(compiled_tiny.trace_path)


class TestOpKind:
    def test_ingest_pseudo_kind(self):
        assert _op_kind({"op": "ingest", "events": [{}]}) == "ingest"

    def test_query_kind_field_wins(self):
        assert _op_kind({"op": "query", "kind": "joint"}) == "joint"

    def test_falls_back_to_first_query_payload(self):
        op = {"op": "query", "queries": [{"kind": "path"}]}
        assert _op_kind(op) == "path"

    def test_unlabelled_is_question_mark(self):
        assert _op_kind({"op": "query", "queries": []}) == "?"


class TestInProcessReplay:
    def test_full_trace_replays_clean(self, compiled_tiny, tiny_ops):
        target = InProcessTarget.from_manifest(
            compiled_tiny.manifest_path, rng=0
        )
        report = replay(tiny_ops, target, workers=1)
        assert report.n_errors == 0
        assert report.n_operations == len(tiny_ops)
        assert report.target == "in-process"
        assert report.throughput_ops_per_second > 0.0
        assert "ingest" in report.kinds
        assert sum(stats.count for stats in report.kinds.values()) == len(
            tiny_ops
        )
        for stats in report.kinds.values():
            assert (
                0.0
                <= stats.p50_seconds
                <= stats.p95_seconds
                <= stats.p99_seconds
                <= stats.max_seconds
            )

    def test_max_ops_truncates_the_replay(self, compiled_tiny, tiny_ops):
        target = InProcessTarget.from_manifest(
            compiled_tiny.manifest_path, rng=0
        )
        report = replay(tiny_ops, target, workers=1, max_ops=4)
        assert report.n_operations == 4

    def test_rejects_zero_workers(self, tiny_ops):
        with pytest.raises(ScenarioError, match="workers"):
            replay(tiny_ops, InFallibleTarget(), workers=0)

    def test_manifest_without_models_is_rejected(self, tmp_path):
        path = tmp_path / "manifest.json"
        path.write_text(json.dumps({
            "kind": "scenario_manifest",
            "format_version": 1,
            "spec": {},
            "files": {"models": {}},
        }))
        with pytest.raises(ScenarioError, match="lists no models"):
            InProcessTarget.from_manifest(str(path))


class InFallibleTarget:
    """Counts executions; never fails."""

    def __init__(self):
        self.lock = threading.Lock()
        self.executed = 0

    def execute(self, op):
        with self.lock:
            self.executed += 1

    def describe(self):
        return "infallible"


class FailingTarget:
    """Raises a taxonomy error on every Nth operation."""

    def __init__(self, every=2):
        self.every = every
        self.lock = threading.Lock()
        self.calls = 0

    def execute(self, op):
        with self.lock:
            self.calls += 1
            if self.calls % self.every == 0:
                raise ServiceError("synthetic failure")

    def describe(self):
        return "failing"


class TestClosedLoop:
    def test_multiple_workers_complete_every_operation(self, tiny_ops):
        target = InFallibleTarget()
        report = replay(tiny_ops, target, workers=4)
        assert target.executed == len(tiny_ops)
        assert report.n_operations == len(tiny_ops)
        assert report.n_errors == 0
        assert report.workers == 4

    def test_taxonomy_errors_are_recorded_not_raised(self, tiny_ops):
        report = replay(tiny_ops, FailingTarget(every=2), workers=1)
        assert report.n_operations == len(tiny_ops)
        assert report.n_errors == len(tiny_ops) // 2
        assert (
            sum(stats.errors for stats in report.kinds.values())
            == report.n_errors
        )

    def test_unexpected_exceptions_propagate(self, tiny_ops):
        class Exploding:
            def execute(self, op):
                raise RuntimeError("not a taxonomy error")

            def describe(self):
                return "exploding"

        with pytest.raises(RuntimeError):
            replay(tiny_ops[:1], Exploding(), workers=1)


class TestLoadReport:
    def test_payload_shape(self, tiny_ops):
        report = replay(tiny_ops[:5], InFallibleTarget(), workers=2)
        payload = report.to_payload()
        assert payload["n_operations"] == 5
        assert payload["workers"] == 2
        assert payload["target"] == "infallible"
        for stats in payload["kinds"].values():
            assert {
                "kind", "count", "errors", "p50_seconds", "p95_seconds",
                "p99_seconds", "mean_seconds", "max_seconds",
            } <= set(stats)

    def test_zero_elapsed_throughput_is_zero(self):
        report = LoadReport(
            target="t", workers=1, n_operations=0, n_errors=0,
            elapsed_seconds=0.0, kinds={},
        )
        assert report.throughput_ops_per_second == 0.0


class TestHttpTarget:
    @pytest.fixture(scope="class")
    def server_url(self, compiled_tiny):
        target = InProcessTarget.from_manifest(
            compiled_tiny.manifest_path, rng=0
        )
        service = target.service
        server = make_server(
            service, port=0, quiet=True, ingestor=StreamIngestor(service)
        )
        host, port = server.server_address[:2]
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        yield f"http://{host}:{port}"
        server.shutdown()
        server.server_close()

    def test_replay_over_http(self, server_url, tiny_ops):
        report = replay(tiny_ops[:8], HttpTarget(server_url), workers=2)
        assert report.n_operations == 8
        assert report.n_errors == 0
        assert report.target == server_url
        assert report.kinds

    def test_http_errors_are_recorded(self, server_url, tiny_ops):
        bad_op = {
            "op": "query",
            "kind": "marginal",
            "model": "no-such-model",
            "queries": [
                {"kind": "marginal", "source": "user0", "sink": "user1"}
            ],
            "n_samples": 8,
        }
        report = replay([bad_op], HttpTarget(server_url), workers=1)
        assert report.n_errors == 1

    def test_unreachable_target_is_an_error_not_a_crash(self, tiny_ops):
        target = HttpTarget("http://127.0.0.1:9", timeout=1.0)
        report = replay(tiny_ops[:1], target, workers=1)
        assert report.n_errors == 1

    def test_server_metrics_saw_the_replayed_queries(self, server_url):
        with urllib.request.urlopen(f"{server_url}/metrics", timeout=30) as r:
            metrics = r.read().decode()
        assert "repro_service_query_seconds_count" in metrics


class TestHttpRequestInfo:
    @pytest.fixture(scope="class")
    def server_url(self, compiled_tiny):
        target = InProcessTarget.from_manifest(
            compiled_tiny.manifest_path, rng=0
        )
        service = target.service
        server = make_server(
            service, port=0, quiet=True, ingestor=StreamIngestor(service)
        )
        host, port = server.server_address[:2]
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        yield f"http://{host}:{port}"
        server.shutdown()
        server.server_close()

    def test_replay_collects_request_ids_and_queueing(
        self, server_url, tiny_ops
    ):
        report = replay(tiny_ops[:6], HttpTarget(server_url), workers=2)
        assert report.n_errors == 0
        # Every successful HTTP operation reports the server's id...
        assert len(report.request_ids) == 6
        assert len(set(report.request_ids)) == 6
        # ...and a server-time sample, so every kind has queue columns.
        for stats in report.kinds.values():
            assert stats.n_queue_samples == stats.count
            assert 0.0 <= stats.queue_p50_seconds <= stats.queue_p95_seconds
            assert stats.queue_p50_seconds <= stats.p50_seconds
        payload = report.to_payload()
        assert payload["n_request_ids"] == 6
        for stats in payload["kinds"].values():
            assert "queue_p50_seconds" in stats
            assert "n_queue_samples" in stats

    def test_http_target_propagates_trace_context(self, server_url, tiny_ops):
        from repro.obs.tracing import get_tracer

        tracer = get_tracer()
        tracer.enable()
        try:
            report = replay(tiny_ops[:3], HttpTarget(server_url), workers=1)
            # Server handler spans close after the client has already
            # read the response; give the last one a moment to land.
            deadline = time.perf_counter() + 5.0
            while time.perf_counter() < deadline:
                if any(
                    s.name == "http.request" and s.trace_id
                    for s in tracer.finished_spans()
                ):
                    break
                time.sleep(0.01)
        finally:
            tracer.disable()
        assert report.n_errors == 0
        spans = tracer.finished_spans()
        requests = [
            s for s in spans if s.name == "loadgen.request" and s.trace_id
        ]
        handled = [s for s in spans if s.name == "http.request" and s.trace_id]
        # The in-process test server records into the same tracer, so
        # each client request span pairs with a server span that shares
        # its trace id (the header crossed the HTTP hop).
        client_traces = {s.trace_id for s in requests}
        server_traces = {s.trace_id for s in handled}
        assert len(requests) >= 3
        assert client_traces & server_traces
        # Each replayed operation is its own trace, rooted client-side.
        assert all(s.parent_id is None for s in requests)
        for span in requests:
            assert span.attributes.get("request_id")


class TestInProcessRequestInfo:
    def test_in_process_replay_has_no_queue_samples(
        self, compiled_tiny, tiny_ops
    ):
        target = InProcessTarget.from_manifest(
            compiled_tiny.manifest_path, rng=0
        )
        report = replay(tiny_ops[:4], target, workers=1)
        assert report.request_ids == ()
        for stats in report.kinds.values():
            assert stats.n_queue_samples == 0
            assert stats.queue_p50_seconds == 0.0
