"""Scenario compiler: determinism, manifest, trace reading."""

import filecmp
import json
import os

import pytest

from repro.errors import ScenarioError
from repro.scenarios.compiler import (
    MANIFEST_FORMAT_VERSION,
    compile_scenario,
    load_manifest,
    read_trace,
)
from repro.scenarios.spec import spec_fingerprint
from repro.service.queries import query_from_payload

from tests.scenarios.conftest import tiny_spec


class TestDeterminism:
    def test_same_spec_and_seed_compiles_byte_identical(self, tmp_path):
        """The acceptance-pinned invariant: recompiles are bit-identical."""
        first = compile_scenario(tiny_spec(), str(tmp_path / "a"))
        second = compile_scenario(tiny_spec(), str(tmp_path / "b"))
        names = sorted(os.listdir(first.out_dir))
        assert names == sorted(os.listdir(second.out_dir))
        match, mismatch, errors = filecmp.cmpfiles(
            first.out_dir, second.out_dir, names, shallow=False
        )
        assert mismatch == [] and errors == []
        assert sorted(match) == names

    def test_different_seed_changes_the_trace(self, tmp_path):
        first = compile_scenario(tiny_spec(seed=3), str(tmp_path / "a"))
        second = compile_scenario(tiny_spec(seed=4), str(tmp_path / "b"))
        with open(first.trace_path) as a, open(second.trace_path) as b:
            assert a.read() != b.read()

    def test_recompile_in_place_is_a_no_op(self, compiled_tiny):
        with open(compiled_tiny.trace_path) as handle:
            before = handle.read()
        compile_scenario(tiny_spec(), compiled_tiny.out_dir)
        with open(compiled_tiny.trace_path) as handle:
            assert handle.read() == before


class TestCompiledArtifacts:
    def test_manifest_round_trips(self, compiled_tiny):
        manifest = load_manifest(compiled_tiny.manifest_path)
        assert manifest["kind"] == "scenario_manifest"
        assert manifest["format_version"] == MANIFEST_FORMAT_VERSION
        assert manifest["fingerprint"] == spec_fingerprint(tiny_spec())
        assert manifest["spec"] == tiny_spec().to_payload()
        counts = manifest["counts"]
        assert counts["n_operations"] == compiled_tiny.n_operations
        assert counts["n_events"] == compiled_tiny.n_events
        assert (
            counts["n_query_ops"] + counts["n_ingest_ops"]
            == counts["n_operations"]
        )

    def test_models_exist_per_channel(self, compiled_tiny):
        assert sorted(compiled_tiny.model_paths) == [
            "hashtag", "retweet", "url",
        ]
        for path in compiled_tiny.model_paths.values():
            assert os.path.exists(path)

    def test_events_file_matches_count(self, compiled_tiny):
        with open(compiled_tiny.events_path) as handle:
            n_lines = sum(1 for line in handle if line.strip())
        assert n_lines == compiled_tiny.n_events > 0

    def test_trace_interleaves_query_and_ingest(self, compiled_tiny):
        ops = read_trace(compiled_tiny.trace_path)
        assert len(ops) == compiled_tiny.n_operations == 25
        kinds = {op["op"] for op in ops}
        assert kinds == {"query", "ingest"}
        assert compiled_tiny.n_ingest_ops >= 1
        assert compiled_tiny.n_query_ops >= 1

    def test_every_query_line_is_a_valid_post_body(self, compiled_tiny):
        for op in read_trace(compiled_tiny.trace_path):
            if op["op"] != "query":
                continue
            assert op["model"] in {"retweet", "hashtag", "url"}
            assert op["n_samples"] in {8, 16}
            for payload in op["queries"]:
                query_from_payload(payload)  # raises on an invalid payload

    def test_summary_payload(self, compiled_tiny):
        payload = compiled_tiny.to_payload()
        assert payload["scenario"] == "tiny"
        assert payload["counts"]["n_operations"] == 25
        assert set(payload["models"]) == {"retweet", "hashtag", "url"}


class TestLoadManifest:
    def test_rejects_malformed_json(self, tmp_path):
        path = tmp_path / "manifest.json"
        path.write_text("{oops")
        with pytest.raises(ScenarioError, match="unparseable"):
            load_manifest(str(path))

    def test_rejects_non_object(self, tmp_path):
        path = tmp_path / "manifest.json"
        path.write_text("[1, 2]")
        with pytest.raises(ScenarioError, match="not a JSON object"):
            load_manifest(str(path))

    def test_rejects_wrong_kind(self, tmp_path):
        path = tmp_path / "manifest.json"
        path.write_text(json.dumps({"kind": "something_else"}))
        with pytest.raises(ScenarioError, match="not a scenario manifest"):
            load_manifest(str(path))

    def test_rejects_wrong_format_version(self, tmp_path):
        path = tmp_path / "manifest.json"
        path.write_text(json.dumps({
            "kind": "scenario_manifest",
            "format_version": MANIFEST_FORMAT_VERSION + 1,
        }))
        with pytest.raises(ScenarioError, match="format_version"):
            load_manifest(str(path))


class TestReadTrace:
    def _write(self, tmp_path, lines):
        path = tmp_path / "trace.jsonl"
        path.write_text("".join(f"{line}\n" for line in lines))
        return str(path)

    def test_rejects_bad_json_line(self, tmp_path):
        path = self._write(tmp_path, ['{"op": "query"', ])
        with pytest.raises(ScenarioError, match="not valid JSON"):
            read_trace(path)

    def test_rejects_non_object_line(self, tmp_path):
        path = self._write(tmp_path, ["[1, 2, 3]"])
        with pytest.raises(ScenarioError, match="expected a JSON object"):
            read_trace(path)

    def test_rejects_unknown_operation(self, tmp_path):
        path = self._write(tmp_path, ['{"op": "teleport"}'])
        with pytest.raises(ScenarioError, match="unknown operation type"):
            read_trace(path)

    def test_rejects_query_without_model(self, tmp_path):
        path = self._write(
            tmp_path, ['{"op": "query", "queries": [{"kind": "marginal"}]}']
        )
        with pytest.raises(ScenarioError, match="non-empty 'model'"):
            read_trace(path)

    def test_rejects_query_without_queries(self, tmp_path):
        path = self._write(
            tmp_path, ['{"op": "query", "model": "retweet", "queries": []}']
        )
        with pytest.raises(ScenarioError, match="non-empty 'queries'"):
            read_trace(path)

    def test_rejects_ingest_without_events(self, tmp_path):
        path = self._write(tmp_path, ['{"op": "ingest", "events": []}'])
        with pytest.raises(ScenarioError, match="non-empty 'events'"):
            read_trace(path)

    def test_error_message_names_the_line(self, tmp_path):
        path = self._write(
            tmp_path,
            ['{"op": "ingest", "events": [{}]}', "not json"],
        )
        with pytest.raises(ScenarioError, match=":2:"):
            read_trace(path)

    def test_max_ops_truncates(self, compiled_tiny):
        assert len(read_trace(compiled_tiny.trace_path, max_ops=7)) == 7

    def test_skips_blank_lines(self, tmp_path):
        path = self._write(
            tmp_path, ["", '{"op": "ingest", "events": [{}]}', ""]
        )
        assert len(read_trace(path)) == 1
