"""HTTP integration for the observability endpoints on an ephemeral port."""

import json
import re
import threading
import urllib.error
import urllib.request

import pytest

from repro.graph.generators import random_icm
from repro.io import model_to_payload
from repro.mcmc.chain import ChainSettings
from repro.obs.metrics import disable_metrics, enable_metrics, get_registry
from repro.service.api import FlowQueryService
from repro.service.server import make_server

# A Prometheus sample line: metric name, optional {labels}, numeric value.
SAMPLE_LINE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*"
    r'(\{[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"'
    r'(,[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*")*\})?'
    r" [0-9eE+.\-]+(\.[0-9]+)?$|^[^ ]+ (\+Inf|-Inf|NaN)$"
)


@pytest.fixture(scope="module")
def server_url():
    # make_server flips the global registry on; restore it after the module.
    was_enabled = get_registry().enabled
    service = FlowQueryService(
        settings=ChainSettings(burn_in=20, thinning=1), rng=0
    )
    server = make_server(service, port=0, quiet=True)
    host, port = server.server_address[:2]
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    url = f"http://{host}:{port}"

    # Drive one registration + two queries so every instrument in the
    # stack (bank, planner, cache, service, chains) has data to expose.
    model = random_icm(20, 60, rng=1, probability_range=(0.1, 0.9))
    _post(f"{url}/models/obs-demo", model_to_payload(model))
    nodes = model.graph.nodes()
    query = {
        "model": "obs-demo",
        "query": {"kind": "marginal", "source": nodes[0], "sink": nodes[4]},
        "n_samples": 48,
    }
    _post(f"{url}/query", query)  # miss: populates banks and telemetry
    _post(f"{url}/query", query)  # hit: exercises the cache counters

    yield url
    server.shutdown()
    server.server_close()
    (enable_metrics if was_enabled else disable_metrics)()


def _post(url, payload):
    request = urllib.request.Request(
        url,
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=30) as response:
        return json.loads(response.read())


def _get_json(url):
    with urllib.request.urlopen(url, timeout=30) as response:
        return json.loads(response.read())


def _get_raw(url):
    with urllib.request.urlopen(url, timeout=30) as response:
        return response.headers, response.read().decode("utf-8")


class TestHealthz:
    def test_healthz_is_bare_liveness(self, server_url):
        payload = _get_json(f"{server_url}/healthz")
        assert payload["status"] == "ok"
        # Liveness plus the one correlation field every response carries.
        assert set(payload) == {"status", "request_id"}

    def test_health_still_lists_models(self, server_url):
        health = _get_json(f"{server_url}/health")
        assert health["status"] == "ok"
        assert "obs-demo" in health["models"]


class TestMetricsEndpoint:
    def test_content_type_is_prometheus_text(self, server_url):
        headers, _ = _get_raw(f"{server_url}/metrics")
        assert headers["Content-Type"].startswith("text/plain; version=0.0.4")

    def test_exposition_is_well_formed(self, server_url):
        _, text = _get_raw(f"{server_url}/metrics")
        assert text.endswith("\n")
        help_names, type_names = set(), set()
        for line in text.strip().splitlines():
            if line.startswith("# HELP "):
                help_names.add(line.split(" ", 3)[2])
            elif line.startswith("# TYPE "):
                name, kind = line.split(" ", 3)[2:4]
                assert kind in {"counter", "gauge", "histogram"}
                type_names.add(name)
            else:
                assert SAMPLE_LINE.match(line), f"malformed sample line: {line!r}"
        assert help_names == type_names

    def test_instruments_across_the_stack_report(self, server_url):
        _, text = _get_raw(f"{server_url}/metrics")
        for metric in (
            "repro_mh_steps_total",
            "repro_bank_samples",
            'repro_cache_requests_total{outcome="hit"}',
            'repro_cache_requests_total{outcome="miss"}',
            "repro_planner_batch_queries_bucket",
            "repro_service_query_seconds_count",
            "repro_service_batches_total",
        ):
            assert metric in text, f"missing {metric} in /metrics"

    def test_counter_values_reflect_traffic(self, server_url):
        _, text = _get_raw(f"{server_url}/metrics")
        samples = {}
        for line in text.strip().splitlines():
            if line.startswith("#"):
                continue
            name, value = line.rsplit(" ", 1)
            samples[name] = float(value)
        assert samples['repro_cache_requests_total{outcome="miss"}'] >= 1
        assert samples['repro_cache_requests_total{outcome="hit"}'] >= 1
        assert samples["repro_service_batches_total"] >= 2


class TestStatuszEndpoint:
    def test_snapshot_structure(self, server_url):
        status = _get_json(f"{server_url}/statusz")
        assert status["metrics_enabled"] is True
        assert "obs-demo" in status["models"]
        assert len(status["models"]["obs-demo"]) == 64

        (planner,) = status["planners"].values()
        (bank,) = planner["banks"]
        assert bank["n_samples"] >= 48
        assert bank["ess"] > 0.0
        for chain in bank["chains"]:
            assert 0.0 <= chain["acceptance_rate"] <= 1.0

        cache = status["cache"]
        assert cache["hits"] >= 1 and cache["misses"] >= 1
        assert 0.0 < cache["hit_ratio"] < 1.0

        assert status["chains"]  # telemetry captured at least one chain
        for chain in status["chains"].values():
            assert chain["steps"] >= chain["accepted_steps"]

    def test_snapshot_is_json_round_trippable(self, server_url):
        status = _get_json(f"{server_url}/statusz")
        assert json.loads(json.dumps(status)) == status


class TestJsonErrors:
    def test_unknown_path_has_json_body(self, server_url):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get_json(f"{server_url}/nope")
        assert excinfo.value.code == 404
        body = json.loads(excinfo.value.read())
        assert "/nope" in body["error"]

    def test_unsupported_method_has_json_body(self, server_url):
        request = urllib.request.Request(f"{server_url}/query", method="PUT")
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=30)
        assert excinfo.value.code == 501
        body = json.loads(excinfo.value.read())
        assert body["error"]
