"""The offline trace analytics toolkit (`repro.obs.analyze`)."""

import json
import math

import pytest

from repro.graph.generators import random_icm
from repro.obs.analyze import (
    BatchObservation,
    analyze_trace,
    bank_trajectories,
    batch_observations,
    join_end_to_end,
    load_metrics,
    load_spans,
    percentile,
    phase_totals,
    query_kind_latencies,
    recommend_batch_size,
    recommend_precision_buckets,
)
from repro.obs.metrics import disable_metrics, enable_metrics, get_registry
from repro.obs.tracing import Tracer, disable_tracing, enable_tracing, get_tracer
from repro.service import FlowQuery, FlowQueryService


def _span(name, span_id, duration_ns, parent_id=None, start_ns=0, **attributes):
    return {
        "name": name,
        "span_id": span_id,
        "parent_id": parent_id,
        "start_ns": start_ns,
        "end_ns": start_ns + duration_ns,
        "duration_ns": duration_ns,
        "attributes": attributes,
    }


class TestLoaders:
    def test_load_spans_roundtrips_tracer_export(self, tmp_path):
        tracer = Tracer(enabled=True)
        with tracer.span("outer"):
            with tracer.span("inner", k=1):
                pass
        path = tmp_path / "trace.jsonl"
        tracer.export_jsonl(str(path))
        spans = load_spans(str(path))
        assert [span["name"] for span in spans] == ["inner", "outer"]
        assert spans[0]["parent_id"] == spans[1]["span_id"]

    def test_load_spans_rejects_garbage(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("not json\n")
        with pytest.raises(ValueError, match="not valid JSON"):
            load_spans(str(path))

    def test_load_spans_rejects_missing_keys(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(json.dumps({"name": "x"}) + "\n")
        with pytest.raises(ValueError, match="missing keys"):
            load_spans(str(path))

    def test_load_spans_rejects_non_object_lines(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("[1, 2]\n")
        with pytest.raises(ValueError, match="JSON object"):
            load_spans(str(path))

    def test_load_metrics_roundtrips_registry_export(self, tmp_path):
        from repro.obs.metrics import MetricsRegistry

        registry = MetricsRegistry(enabled=True)
        registry.counter("events_total", "Events.").inc(3)
        path = tmp_path / "metrics.jsonl"
        assert registry.export_jsonl(str(path)) == 1
        (family,) = load_metrics(str(path))
        assert family["name"] == "events_total"
        assert family["samples"][0]["value"] == 3.0


class TestPhaseTotals:
    def test_self_time_subtracts_children(self):
        spans = [
            _span("child", span_id=2, duration_ns=300, parent_id=1),
            _span("parent", span_id=1, duration_ns=1000),
        ]
        stats = phase_totals(spans)
        assert stats["parent"].total_ns == 1000
        assert stats["parent"].self_ns == 700
        assert stats["child"].self_ns == 300

    def test_count_and_extrema(self):
        spans = [
            _span("work", span_id=1, duration_ns=100),
            _span("work", span_id=2, duration_ns=500),
        ]
        (stat,) = phase_totals(spans).values()
        assert (stat.count, stat.min_ns, stat.max_ns) == (2, 100, 500)
        assert stat.mean_ns == 300.0
        assert stat.total_seconds == pytest.approx(600e-9)


class TestBankTrajectories:
    def test_reconstructs_points_in_start_order(self):
        spans = [
            _span(
                "bank.grow", span_id=2, duration_ns=2_000_000_000, start_ns=50,
                bank="b", n_new=256, n_samples=512, ess_before=20.0,
                ess_after=50.0,
            ),
            _span(
                "bank.grow", span_id=1, duration_ns=1_000_000_000, start_ns=0,
                bank="b", n_new=256, n_samples=256, ess_before=0.0,
                ess_after=20.0,
            ),
        ]
        trajectory = bank_trajectories(spans)["b"]
        assert [point.n_samples for point in trajectory.points] == [256, 512]
        assert trajectory.final_ess == 50.0
        assert trajectory.points[1].marginal_ess == pytest.approx(30.0)
        assert trajectory.points[1].ess_per_second == pytest.approx(15.0)
        assert trajectory.total_seconds == pytest.approx(3.0)

    def test_ignores_other_spans(self):
        assert bank_trajectories([_span("other", span_id=1, duration_ns=5)]) == {}


class TestBatchRecommendations:
    def test_observations_extracted_from_query_batch_spans(self):
        spans = [
            _span(
                "service.query_batch", span_id=1, duration_ns=10_000_000,
                n_queries=4, cache_hits=1, cache_misses=3, target_ess=200.0,
            ),
        ]
        (observation,) = batch_observations(spans)
        assert observation.n_queries == 4
        assert observation.target_ess == 200.0
        assert observation.seconds_per_query == pytest.approx(0.0025)

    def test_recommends_bucket_with_best_per_query_latency(self):
        observations = [
            BatchObservation(1, 10_000_000, 0, 1, None, None),   # 10 ms/query
            BatchObservation(10, 20_000_000, 0, 10, None, None),  # 2 ms/query
        ]
        recommendation = recommend_batch_size(observations)
        assert recommendation.recommended_batch_size == 10
        assert recommendation.n_observations == 2

    def test_no_usable_batches_gives_none(self):
        assert recommend_batch_size([]) is None
        empty = BatchObservation(0, 1, 0, 0, None, None)
        assert recommend_batch_size([empty]) is None

    def test_rejects_empty_bucket_list(self):
        observation = BatchObservation(1, 1, 0, 1, None, None)
        with pytest.raises(ValueError, match="bucket"):
            recommend_batch_size([observation], buckets=())

    def test_precision_buckets_round_up_and_cover_targets(self):
        observations = [
            BatchObservation(1, 1, 0, 1, target, None)
            for target in (97.0, 113.0, 500.0, 501.0, 980.0, 2000.0)
        ]
        recommendation = recommend_precision_buckets(observations, max_buckets=3)
        assert len(recommendation.buckets) <= 3
        # every raw target maps onto a bucket that is >= it
        for target in recommendation.distinct_targets:
            assert any(bucket >= target for bucket in recommendation.buckets)

    def test_precision_none_without_targets(self):
        observation = BatchObservation(1, 1, 0, 1, None, None)
        assert recommend_precision_buckets([observation]) is None

    def test_precision_rejects_bad_max_buckets(self):
        with pytest.raises(ValueError, match="max_buckets"):
            recommend_precision_buckets([], max_buckets=0)


@pytest.fixture
def observability():
    """Enable the global tracer+registry for one test, then restore."""
    enable_tracing()
    enable_metrics()
    get_tracer().clear()
    try:
        yield
    finally:
        disable_tracing()
        disable_metrics()


class TestStatuszEquivalence:
    def test_analyze_reproduces_statusz_phase_totals(self, tmp_path, observability):
        """Acceptance: offline analysis of a recorded trace reports the
        same per-phase span totals /statusz served for the same run."""
        service = FlowQueryService(rng=0, default_n_samples=64)
        model = random_icm(30, 60, rng=1)
        service.register("m", model)
        nodes = model.graph.nodes()
        queries = [
            FlowQuery(kind="marginal", flows=((nodes[0], nodes[i]),))
            for i in range(1, 5)
        ]
        service.query_batch("m", queries, target_ess=40.0)
        service.query_batch("m", queries[:2], target_ess=60.0)

        live = service.statusz()["trace"]["phases"]

        trace_path = tmp_path / "trace.jsonl"
        get_tracer().export_jsonl(str(trace_path))
        analysis = analyze_trace(load_spans(str(trace_path)))
        offline = {
            name: {"count": stat.count, "total_ns": stat.total_ns}
            for name, stat in analysis.phases.items()
        }
        assert offline == live
        assert "service.query_batch" in offline
        assert "bank.grow" in offline

    def test_full_pipeline_with_metrics(self, tmp_path, observability):
        service = FlowQueryService(rng=0, default_n_samples=64)
        model = random_icm(20, 40, rng=2)
        service.register("m", model)
        nodes = model.graph.nodes()
        query = FlowQuery(kind="marginal", flows=((nodes[0], nodes[1]),))
        service.query_batch("m", [query], target_ess=30.0)

        trace_path = tmp_path / "trace.jsonl"
        metrics_path = tmp_path / "metrics.jsonl"
        get_tracer().export_jsonl(str(trace_path))
        get_registry().export_jsonl(str(metrics_path))
        analysis = analyze_trace(
            load_spans(str(trace_path)),
            metrics=load_metrics(str(metrics_path)),
        )
        assert analysis.banks  # the bank.grow spans became trajectories
        for trajectory in analysis.banks.values():
            assert trajectory.final_ess > 0.0
            assert all(
                point.marginal_ess >= 0.0 or math.isnan(point.marginal_ess)
                for point in trajectory.points
            )
        assert analysis.batch_recommendation is not None
        assert analysis.precision_recommendation is not None
        assert analysis.metrics is not None
        # the process-wide histogram accumulates across tests; this run
        # added at least one observation
        assert analysis.metrics["service_query_seconds"]["count"] >= 1
        # the whole report must be one JSON document
        json.dumps(analysis.to_payload())


class TestPercentile:
    def test_nearest_rank(self):
        values = [10.0, 20.0, 30.0, 40.0, 50.0, 60.0, 70.0, 80.0, 90.0, 100.0]
        assert percentile(values, 50.0) == 50.0
        assert percentile(values, 95.0) == 100.0
        assert percentile(values, 99.0) == 100.0
        assert percentile(values, 0.0) == 10.0
        assert percentile(values, 100.0) == 100.0

    def test_order_independent(self):
        assert percentile([3.0, 1.0, 2.0], 50.0) == 2.0

    def test_single_value(self):
        assert percentile([7.0], 50.0) == 7.0
        assert percentile([7.0], 99.0) == 7.0

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="empty"):
            percentile([], 50.0)

    def test_rejects_out_of_range_q(self):
        with pytest.raises(ValueError):
            percentile([1.0], -1.0)
        with pytest.raises(ValueError):
            percentile([1.0], 101.0)


class TestQueryKindLatencies:
    def _observation(self, kinds, duration_ns):
        return BatchObservation(
            n_queries=1, duration_ns=duration_ns, cache_hits=0,
            cache_misses=1, target_ess=None, n_samples=None, kinds=kinds,
        )

    def test_groups_by_kinds_label(self):
        observations = [
            self._observation("marginal", 10),
            self._observation("marginal", 30),
            self._observation("joint", 50),
        ]
        latencies = query_kind_latencies(observations)
        assert set(latencies) == {"marginal", "joint"}
        assert latencies["marginal"].count == 2
        assert latencies["marginal"].p50_ns == 10.0
        assert latencies["marginal"].p99_ns == 30.0
        assert latencies["joint"].mean_ns == 50.0

    def test_pre_attribute_batches_group_under_question_mark(self):
        observations = [self._observation(None, 10)]
        latencies = query_kind_latencies(observations)
        assert set(latencies) == {"?"}

    def test_percentile_ordering(self):
        observations = [
            self._observation("path", float(ns)) for ns in range(1, 42)
        ]
        stats = query_kind_latencies(observations)["path"]
        assert stats.p50_ns <= stats.p95_ns <= stats.p99_ns

    def test_payload_shape(self):
        (stats,) = query_kind_latencies(
            [self._observation("impact", 5)]
        ).values()
        assert stats.to_payload() == {
            "kinds": "impact",
            "count": 1,
            "p50_ns": 5.0,
            "p95_ns": 5.0,
            "p99_ns": 5.0,
            "mean_ns": 5.0,
        }

    def test_real_query_batch_spans_carry_kinds(self, tmp_path, observability):
        """End to end: a traced query_batch lands in query_latencies under
        its kind label, and the label survives the JSON payload."""
        service = FlowQueryService(rng=0, default_n_samples=32)
        model = random_icm(20, 40, rng=3)
        service.register("m", model)
        nodes = model.graph.nodes()
        query = FlowQuery(kind="marginal", flows=((nodes[0], nodes[1]),))
        service.query_batch("m", [query], n_samples=32)

        trace_path = tmp_path / "trace.jsonl"
        get_tracer().export_jsonl(str(trace_path))
        analysis = analyze_trace(load_spans(str(trace_path)))
        assert "marginal" in analysis.query_latencies
        payload = analysis.to_payload()
        assert payload["query_latencies"]["marginal"]["count"] >= 1


def _traced_span(name, span_id, duration_ns, trace_id, parent_id=None, **attributes):
    span = _span(name, span_id, duration_ns, parent_id=parent_id, **attributes)
    span["trace_id"] = trace_id
    return span


class TestEndToEndJoin:
    def test_joins_by_trace_id_and_derives_queueing(self):
        trace = "a" * 32
        client = [
            _traced_span(
                "loadgen.request", 1, 5_000, trace, kind="marginal",
                request_id="req-1",
            )
        ]
        server = [
            _traced_span("http.request", 1, 3_000, trace),
            _traced_span("service.query_batch", 2, 2_000, trace, parent_id=1),
        ]
        report = join_end_to_end(client, server)
        assert report.n_client_requests == 1
        assert report.n_matched == 1
        assert report.match_ratio == 1.0
        join = report.joins[0]
        assert join.kind == "marginal"
        assert join.request_id == "req-1"
        assert join.client_ns == 5_000
        # Only server-side roots count as handling time; nested spans
        # are already inside them.
        assert join.server_ns == 3_000
        assert join.queueing_ns == 2_000
        assert join.n_server_spans == 2
        assert join.n_server_roots == 1
        assert report.queueing["marginal"].p50_ns == 2_000.0

    def test_unmatched_requests_are_counted_not_joined(self):
        client = [
            _traced_span("loadgen.request", 1, 1_000, "a" * 32, kind="k"),
            _traced_span("loadgen.request", 2, 1_000, "b" * 32, kind="k"),
        ]
        server = [_traced_span("http.request", 1, 500, "a" * 32)]
        report = join_end_to_end(client, server)
        assert report.n_client_requests == 2
        assert report.n_matched == 1
        assert report.n_unmatched == 1
        assert report.match_ratio == 0.5

    def test_non_root_and_untraced_client_spans_are_not_requests(self):
        client = [
            _span("loadgen.replay", 1, 9_000),  # no trace id
            _traced_span("inner", 2, 1_000, "a" * 32, parent_id=3),
        ]
        report = join_end_to_end(client, [])
        assert report.n_client_requests == 0
        assert report.match_ratio == 0.0

    def test_queueing_clamps_at_zero(self):
        trace = "c" * 32
        client = [_traced_span("loadgen.request", 1, 1_000, trace, kind="k")]
        server = [_traced_span("http.request", 1, 5_000, trace)]
        report = join_end_to_end(client, server)
        assert report.joins[0].queueing_ns == 0

    def test_analyze_trace_attaches_report_and_merges_phases(self):
        trace = "d" * 32
        client = [
            _traced_span("loadgen.request", 1, 5_000, trace, kind="marginal")
        ]
        server = [_traced_span("http.request", 1, 3_000, trace)]
        analysis = analyze_trace(client, server_spans=server)
        assert analysis.end_to_end is not None
        assert analysis.end_to_end.n_matched == 1
        # Phases from both files appear, computed per file (span ids
        # collide across processes) then merged.
        assert set(analysis.phases) == {"loadgen.request", "http.request"}
        payload = analysis.to_payload()
        assert payload["end_to_end"]["match_ratio"] == 1.0

    def test_analyze_trace_without_server_spans_has_no_report(self):
        analysis = analyze_trace([_span("anything", 1, 10)])
        assert analysis.end_to_end is None
        assert analysis.to_payload()["end_to_end"] is None
