"""Unit tests for the request-scoped trace context machinery."""

import threading

import pytest

from repro.obs.context import (
    TraceContext,
    activate_trace_context,
    current_trace_context,
    new_request_id,
    new_trace_context,
)
from repro.obs.tracing import Tracer


class TestTraceContext:
    def test_new_context_is_valid_root(self):
        context = new_trace_context()
        assert len(context.trace_id) == 32
        assert context.span_id == 0
        assert context.sampled is True

    def test_new_contexts_are_distinct(self):
        assert new_trace_context().trace_id != new_trace_context().trace_id

    def test_child_keeps_trace_id(self):
        context = new_trace_context()
        child = context.child(42)
        assert child.trace_id == context.trace_id
        assert child.span_id == 42

    def test_invalid_trace_id_rejected(self):
        with pytest.raises(ValueError):
            TraceContext(trace_id="nope", span_id=0)

    def test_invalid_span_id_rejected(self):
        with pytest.raises(ValueError):
            TraceContext(trace_id="a" * 32, span_id=1 << 64)

    def test_request_ids_are_short_hex(self):
        request_id = new_request_id()
        assert len(request_id) == 16
        assert set(request_id) <= set("0123456789abcdef")


class TestActivation:
    def test_default_is_none(self):
        assert current_trace_context() is None

    def test_activation_scopes_to_with_block(self):
        context = new_trace_context()
        with activate_trace_context(context):
            assert current_trace_context() is context
        assert current_trace_context() is None

    def test_none_clears_an_active_context(self):
        with activate_trace_context(new_trace_context()):
            with activate_trace_context(None):
                assert current_trace_context() is None
            assert current_trace_context() is not None

    def test_threads_do_not_inherit_context(self):
        seen = []
        with activate_trace_context(new_trace_context()):
            thread = threading.Thread(
                target=lambda: seen.append(current_trace_context())
            )
            thread.start()
            thread.join()
        assert seen == [None]


class TestSpanInteraction:
    def test_spans_record_active_trace_id(self):
        tracer = Tracer()
        context = new_trace_context()
        with activate_trace_context(context):
            with tracer.span("outer") as outer:
                with tracer.span("inner") as inner:
                    pass
        assert outer.trace_id == context.trace_id
        assert inner.trace_id == context.trace_id
        # Only the root of the local subtree records the remote parent.
        assert outer.remote_parent_id == context.span_id
        assert inner.remote_parent_id is None
        assert inner.parent_id == outer.span_id

    def test_unsampled_context_suppresses_recording(self):
        tracer = Tracer()
        with activate_trace_context(new_trace_context(sampled=False)):
            with tracer.span("quiet") as span:
                assert span is None
        assert tracer.finished_spans() == []

    def test_new_context_roots_its_own_trace(self):
        # A span opened under a context different from its enclosing
        # span's trace must become a root, not a cross-trace child.
        tracer = Tracer()
        with tracer.span("harness") as harness:
            context = new_trace_context()
            with activate_trace_context(context):
                with tracer.span("request") as request:
                    pass
        assert harness.trace_id is None
        assert request.parent_id is None
        assert request.trace_id == context.trace_id

    def test_spans_without_context_have_no_trace_id(self):
        tracer = Tracer()
        with tracer.span("plain") as span:
            pass
        assert span.trace_id is None
        assert span.remote_parent_id is None
