"""Unit tests for the sampling profiler and folded-stack analytics."""

import threading
import time

import pytest

from repro.obs.profiler import (
    SamplingProfiler,
    flame_summary,
    get_profiler,
    parse_folded,
    start_profiler,
    stop_profiler,
    top_frames,
)


def _busy_work(stop: threading.Event) -> None:
    while not stop.is_set():
        sum(i * i for i in range(500))


class TestSamplingProfiler:
    def test_rejects_non_positive_hz(self):
        with pytest.raises(ValueError):
            SamplingProfiler(hz=0.0)

    def test_samples_a_busy_thread(self):
        stop = threading.Event()
        worker = threading.Thread(target=_busy_work, args=(stop,), daemon=True)
        worker.start()
        profiler = SamplingProfiler(hz=200.0).start()
        try:
            deadline = time.perf_counter() + 5.0
            while (
                profiler.sample_count < 10
                and time.perf_counter() < deadline
            ):
                time.sleep(0.01)
        finally:
            profiler.stop()
            stop.set()
            worker.join()
        assert profiler.sample_count >= 10
        counts = profiler.snapshot()
        assert counts
        assert any("_busy_work" in stack for stack in counts)

    def test_folded_output_parses_back(self):
        stop = threading.Event()
        worker = threading.Thread(target=_busy_work, args=(stop,), daemon=True)
        worker.start()
        profiler = SamplingProfiler(hz=200.0).start()
        time.sleep(0.15)
        profiler.stop()
        stop.set()
        worker.join()
        folded = profiler.folded()
        stacks = parse_folded(folded)
        assert sum(stacks.values()) == sum(profiler.snapshot().values())
        for frames in stacks:
            assert all(frames)

    def test_start_is_idempotent_and_stop_retains_counts(self):
        profiler = SamplingProfiler(hz=500.0)
        assert profiler.start() is profiler.start()
        time.sleep(0.05)
        profiler.stop()
        assert not profiler.running
        before = profiler.snapshot()
        time.sleep(0.05)
        assert profiler.snapshot() == before

    def test_clear_resets(self):
        profiler = SamplingProfiler(hz=500.0).start()
        time.sleep(0.05)
        profiler.stop()
        profiler.clear()
        assert profiler.snapshot() == {}
        assert profiler.sample_count == 0


class TestGlobalProfiler:
    def test_lifecycle(self):
        assert get_profiler() is None
        profiler = start_profiler(hz=500.0)
        try:
            assert get_profiler() is profiler
            assert start_profiler() is profiler  # hz of the first start wins
            assert profiler.running
        finally:
            stopped = stop_profiler()
        assert stopped is profiler
        assert not profiler.running
        assert get_profiler() is None
        assert stop_profiler() is None


class TestParseFolded:
    def test_parses_and_merges_duplicates(self):
        stacks = parse_folded("a;b 3\na;b 2\nc 1\n\n")
        assert stacks == {("a", "b"): 5, ("c",): 1}

    def test_rejects_missing_count(self):
        with pytest.raises(ValueError, match="line 1"):
            parse_folded("justonestack")

    def test_rejects_non_integer_count(self):
        with pytest.raises(ValueError, match="line 2"):
            parse_folded("a;b 3\na;b x")

    def test_rejects_negative_count(self):
        with pytest.raises(ValueError, match="non-negative"):
            parse_folded("a;b -1")


class TestFlameSummary:
    def test_self_and_total_attribution(self):
        stacks = {
            ("main", "hot"): 6,
            ("main", "hot", "inner"): 3,
            ("main", "cold"): 1,
        }
        total, rows = flame_summary(stacks, top=10)
        assert total == 10
        by_name = {row.frame: row for row in rows}
        assert by_name["hot"].self_samples == 6
        assert by_name["hot"].total_samples == 9
        assert by_name["main"].self_samples == 0
        assert by_name["main"].total_samples == 10
        assert by_name["inner"].self_samples == 3
        # Hottest self-time first.
        assert rows[0].frame == "hot"

    def test_recursive_frames_count_once_per_sample(self):
        total, rows = flame_summary({("f", "f", "f"): 4}, top=5)
        assert total == 4
        assert rows[0].frame == "f"
        assert rows[0].total_samples == 4

    def test_top_truncates(self):
        stacks = {(f"frame{i}",): 1 for i in range(30)}
        _, rows = flame_summary(stacks, top=5)
        assert len(rows) == 5
        assert len(top_frames(stacks, top=7)) == 7

    def test_rejects_non_positive_top(self):
        with pytest.raises(ValueError):
            flame_summary({}, top=0)
