"""Metric instruments: correctness, concurrency, exposition, no-op path."""

import json
import subprocess
import sys
import threading

import pytest

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    MetricsRegistry,
    disable_metrics,
    enable_metrics,
    get_registry,
)


@pytest.fixture
def registry():
    return MetricsRegistry(enabled=True)


class TestCounter:
    def test_increments_accumulate(self, registry):
        counter = registry.counter("reqs_total", "requests")
        counter.inc()
        counter.inc(4)
        assert counter.value() == 5.0

    def test_labelled_samples_are_independent(self, registry):
        counter = registry.counter("reqs_total", "requests", labels=("outcome",))
        counter.inc(outcome="hit")
        counter.inc(2, outcome="miss")
        assert counter.value(outcome="hit") == 1.0
        assert counter.value(outcome="miss") == 2.0

    def test_negative_increment_rejected(self, registry):
        counter = registry.counter("reqs_total", "requests")
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_wrong_labels_rejected(self, registry):
        counter = registry.counter("reqs_total", "requests", labels=("outcome",))
        with pytest.raises(ValueError):
            counter.inc(wrong="x")
        with pytest.raises(ValueError):
            counter.value()


class TestGauge:
    def test_set_and_add(self, registry):
        gauge = registry.gauge("live", "live things")
        gauge.set(3.0)
        gauge.add(-1.5)
        assert gauge.value() == 1.5

    def test_labelled(self, registry):
        gauge = registry.gauge("live", "live things", labels=("bank",))
        gauge.set(10, bank="a")
        gauge.set(20, bank="b")
        assert gauge.value(bank="a") == 10.0
        assert gauge.value(bank="b") == 20.0


class TestHistogram:
    def test_count_sum_and_buckets(self, registry):
        histogram = registry.histogram(
            "lat_seconds", "latency", buckets=(0.1, 1.0)
        )
        for value in (0.05, 0.5, 5.0):
            histogram.observe(value)
        assert histogram.count() == 3
        assert histogram.sum() == pytest.approx(5.55)
        lines = histogram.render_prometheus()
        assert 'lat_seconds_bucket{le="0.1"} 1' in lines
        assert 'lat_seconds_bucket{le="1"} 2' in lines
        assert 'lat_seconds_bucket{le="+Inf"} 3' in lines

    def test_default_buckets_are_increasing(self):
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)

    def test_bad_buckets_rejected(self, registry):
        with pytest.raises(ValueError):
            registry.histogram("h", "h", buckets=())
        with pytest.raises(ValueError):
            registry.histogram("h", "h", buckets=(1.0, 1.0))


class TestRegistry:
    def test_factories_are_idempotent(self, registry):
        first = registry.counter("x_total", "x")
        second = registry.counter("x_total", "x")
        assert first is second

    def test_kind_mismatch_rejected(self, registry):
        registry.counter("x_total", "x")
        with pytest.raises(ValueError):
            registry.gauge("x_total", "x")

    def test_label_mismatch_rejected(self, registry):
        registry.counter("x_total", "x", labels=("a",))
        with pytest.raises(ValueError):
            registry.counter("x_total", "x", labels=("b",))

    def test_bad_name_rejected(self, registry):
        with pytest.raises(ValueError):
            registry.counter("bad name", "x")
        with pytest.raises(ValueError):
            registry.counter("", "x")

    def test_snapshot_is_json_serialisable(self, registry):
        registry.counter("c_total", "c", labels=("k",)).inc(k="v")
        registry.gauge("g", "g").set(1.5)
        registry.histogram("h_seconds", "h").observe(0.2)
        payload = json.loads(registry.render_json())
        assert payload["enabled"] is True
        names = [family["name"] for family in payload["metrics"]]
        assert names == sorted(names)
        assert {"c_total", "g", "h_seconds"} <= set(names)


class TestPrometheusExposition:
    def test_help_type_and_sample_lines(self, registry):
        counter = registry.counter("reqs_total", "requests served", labels=("outcome",))
        counter.inc(outcome="hit")
        text = registry.render_prometheus()
        assert "# HELP reqs_total requests served\n" in text
        assert "# TYPE reqs_total counter\n" in text
        assert 'reqs_total{outcome="hit"} 1\n' in text

    def test_label_values_are_escaped(self, registry):
        counter = registry.counter("c_total", "c", labels=("k",))
        counter.inc(k='quo"te\nnew\\line')
        text = registry.render_prometheus()
        assert 'k="quo\\"te\\nnew\\\\line"' in text

    def test_every_line_is_well_formed(self, registry):
        registry.counter("c_total", "c", labels=("k",)).inc(k="v")
        registry.gauge("g", "g").set(2)
        hist = registry.histogram("h_seconds", "h", buckets=(0.5,))
        hist.observe(0.1)
        for line in registry.render_prometheus().strip().splitlines():
            assert line.startswith("#") or " " in line, line
            if not line.startswith("#"):
                name_part, value = line.rsplit(" ", 1)
                float(value)  # every sample value parses as a number
                assert name_part[0].isalpha()


class TestConcurrency:
    def test_concurrent_increments_from_many_threads(self, registry):
        counter = registry.counter("c_total", "c", labels=("worker",))
        gauge = registry.gauge("g", "g")
        histogram = registry.histogram("h_seconds", "h", buckets=(0.5,))
        n_threads, per_thread = 8, 2000
        barrier = threading.Barrier(n_threads)

        def hammer(worker: int) -> None:
            barrier.wait()
            for _ in range(per_thread):
                counter.inc(worker=str(worker % 2))
                gauge.add(1)
                histogram.observe(0.1)

        threads = [
            threading.Thread(target=hammer, args=(worker,))
            for worker in range(n_threads)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        total = counter.value(worker="0") + counter.value(worker="1")
        assert total == n_threads * per_thread
        assert gauge.value() == n_threads * per_thread
        assert histogram.count() == n_threads * per_thread


class TestNoOpFastPath:
    def test_disabled_instruments_record_nothing(self):
        registry = MetricsRegistry(enabled=False)
        counter = registry.counter("c_total", "c")
        gauge = registry.gauge("g", "g")
        histogram = registry.histogram("h_seconds", "h")
        counter.inc(100)
        gauge.set(5)
        histogram.observe(1.0)
        assert counter.value() == 0.0
        assert gauge.value() == 0.0
        assert histogram.count() == 0

    def test_enable_disable_round_trip(self):
        registry = MetricsRegistry(enabled=False)
        counter = registry.counter("c_total", "c")
        registry.enable()
        counter.inc()
        registry.disable()
        counter.inc()
        assert counter.value() == 1.0

    def test_global_registry_default_off_in_fresh_process(self):
        # Hermetic: this process may have enabled the global registry, so
        # the default-off contract is asserted in a clean interpreter.
        code = (
            "import os; os.environ.pop('REPRO_METRICS', None);"
            "from repro.obs.metrics import get_registry;"
            "assert get_registry().enabled is False"
        )
        subprocess.run([sys.executable, "-c", code], check=True)

    def test_env_var_enables_global_registry(self):
        import os

        code = (
            "from repro.obs.metrics import get_registry;"
            "assert get_registry().enabled is True"
        )
        env = dict(os.environ)
        env["REPRO_METRICS"] = "1"
        subprocess.run([sys.executable, "-c", code], check=True, env=env)

    def test_enable_metrics_helpers(self):
        was_enabled = get_registry().enabled
        try:
            enable_metrics()
            assert get_registry().enabled
            disable_metrics()
            assert not get_registry().enabled
        finally:
            (enable_metrics if was_enabled else disable_metrics)()
