"""The perf-regression sentry (`repro.obs.sentry`) and its CLI."""

import json

import pytest

from repro.obs.sentry import load_baseline, run_sentry

BASELINE = "BENCH_mh_sampler.json"

#: Small sentry settings so the suite stays fast; the real CI gate uses
#: the defaults (5 rounds, batch 2000).
FAST = dict(rounds=3, warmup=2, update_batch=500)

#: The scaled-down profile above is noisier than the CI defaults, so the
#: CLEAN assertions allow a 2x per-unit median before calling REGRESS.
#: The injected-slowdown tests keep the strict default (0.5): a 2x
#: injection lands at >= 2x the observed ratio, far past 1.5.
CLEAN_TOLERANCE = 1.0


@pytest.fixture(scope="module")
def clean_report():
    """One real (slowdown=1) sentry run shared by the module's tests."""
    return run_sentry(BASELINE, rel_tolerance=CLEAN_TOLERANCE, **FAST)


class TestLoadBaseline:
    def test_loads_committed_snapshot(self):
        cases = load_baseline(BASELINE)
        update = cases["test_chain_update_paper_scale"]
        assert update.units_per_round == 10_000
        assert 0.0 < update.per_unit_seconds < update.median_seconds
        sample = cases["test_output_sample_paper_scale"]
        assert sample.units_per_round == 1
        assert sample.per_unit_seconds == sample.median_seconds

    def test_rejects_non_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("nope")
        with pytest.raises(ValueError, match="not valid JSON"):
            load_baseline(str(path))

    def test_rejects_non_benchmark_document(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"results": []}))
        with pytest.raises(ValueError, match="benchmarks"):
            load_baseline(str(path))

    def test_rejects_empty_benchmarks(self, tmp_path):
        path = tmp_path / "empty.json"
        path.write_text(json.dumps({"benchmarks": []}))
        with pytest.raises(ValueError, match="no benchmarks"):
            load_baseline(str(path))


class TestVerdicts:
    def test_committed_baseline_is_clean(self, clean_report):
        """Acceptance: the sentry, run for real against the committed
        baseline, reports CLEAN (the repo has not regressed itself)."""
        assert clean_report.verdict == "CLEAN"
        assert not clean_report.regressed
        assert {case.name for case in clean_report.cases} == {
            "test_chain_update_paper_scale",
            "test_output_sample_paper_scale",
        }
        for case in clean_report.cases:
            assert case.ratio <= 1.0 + case.rel_tolerance

    def test_injected_2x_slowdown_regresses(self):
        """Acceptance: a synthetic 2x slowdown must flip the verdict."""
        report = run_sentry(BASELINE, slowdown=2.0, **FAST)
        assert report.verdict == "REGRESS"
        assert report.regressed
        assert any(case.regressed for case in report.cases)

    def test_report_payload_is_json_document(self, clean_report):
        payload = json.loads(json.dumps(clean_report.to_payload()))
        assert payload["verdict"] == "CLEAN"
        assert payload["baseline_path"] == BASELINE
        assert len(payload["cases"]) == 2
        for case in payload["cases"]:
            assert case["verdict"] in ("CLEAN", "REGRESS")
            assert case["ratio"] > 0.0
        assert "python_version" in payload["observed_metadata"]

    def test_missing_sentry_case_rejected(self, tmp_path):
        path = tmp_path / "partial.json"
        path.write_text(
            json.dumps(
                {
                    "benchmarks": [
                        {
                            "name": "test_chain_update_paper_scale",
                            "stats": {"median": 0.01},
                            "extra_info": {"updates_per_round": 1000},
                        }
                    ]
                }
            )
        )
        with pytest.raises(ValueError, match="missing sentry cases"):
            run_sentry(str(path), **FAST)


class TestParameterValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"rel_tolerance": -0.1},
            {"rounds": 0},
            {"warmup": -1},
            {"update_batch": 0},
            {"slowdown": 0.0},
        ],
    )
    def test_bad_parameters_rejected(self, kwargs):
        with pytest.raises(ValueError):
            run_sentry(BASELINE, **kwargs)


class TestCli:
    def test_sentry_clean_exit_zero_and_report_artifact(self, tmp_path, capsys):
        from repro.obs.cli import main

        report_path = tmp_path / "report.json"
        code = main(
            [
                "sentry",
                "--baseline", BASELINE,
                "--rounds", "3",
                "--warmup", "2",
                "--update-batch", "500",
                "--rel-tolerance", "1.0",
                "--report", str(report_path),
            ]
        )
        assert code == 0
        assert "CLEAN" in capsys.readouterr().out
        artifact = json.loads(report_path.read_text())
        assert artifact["verdict"] == "CLEAN"

    def test_sentry_regress_exit_one(self, capsys):
        from repro.obs.cli import main

        code = main(
            [
                "sentry",
                "--baseline", BASELINE,
                "--rounds", "3",
                "--warmup", "2",
                "--update-batch", "500",
                "--slowdown", "2.0",
                "--json",
            ]
        )
        assert code == 1
        assert json.loads(capsys.readouterr().out)["verdict"] == "REGRESS"

    def test_bad_input_exit_two(self, tmp_path, capsys):
        from repro.obs.cli import main

        code = main(["sentry", "--baseline", str(tmp_path / "missing.json")])
        assert code == 2
        assert "error" in capsys.readouterr().err

    def test_analyze_bad_trace_exit_two(self, tmp_path, capsys):
        from repro.obs.cli import main

        path = tmp_path / "trace.jsonl"
        path.write_text("garbage\n")
        code = main(["analyze", str(path)])
        assert code == 2
        assert "error" in capsys.readouterr().err
