"""The perf-regression sentry (`repro.obs.sentry`) and its CLI."""

import json

import pytest

from repro.obs.sentry import load_baseline, load_query_baseline, run_sentry

BASELINE = "BENCH_mh_sampler.json"
QUERY_BASELINE = "BENCH_query_service.json"

#: Small sentry settings so the suite stays fast; the real CI gate uses
#: the defaults (5 rounds, batch 2000).
FAST = dict(rounds=3, warmup=2, update_batch=500)

#: The scaled-down profile above is noisier than the CI defaults, so the
#: CLEAN assertions allow a 2x per-unit median before calling REGRESS.
#: The injected-slowdown tests keep the strict default (0.5): a 2x
#: injection lands at >= 2x the observed ratio, far past 1.5.
CLEAN_TOLERANCE = 1.0


@pytest.fixture(scope="module")
def clean_report():
    """One real (slowdown=1) sentry run shared by the module's tests."""
    return run_sentry(BASELINE, rel_tolerance=CLEAN_TOLERANCE, **FAST)


class TestLoadBaseline:
    def test_loads_committed_snapshot(self):
        cases = load_baseline(BASELINE)
        update = cases["test_chain_update_paper_scale"]
        assert update.units_per_round == 10_000
        assert 0.0 < update.per_unit_seconds < update.median_seconds
        sample = cases["test_output_sample_paper_scale"]
        assert sample.units_per_round == 1
        assert sample.per_unit_seconds == sample.median_seconds

    def test_rejects_non_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("nope")
        with pytest.raises(ValueError, match="not valid JSON"):
            load_baseline(str(path))

    def test_rejects_non_benchmark_document(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"results": []}))
        with pytest.raises(ValueError, match="benchmarks"):
            load_baseline(str(path))

    def test_rejects_empty_benchmarks(self, tmp_path):
        path = tmp_path / "empty.json"
        path.write_text(json.dumps({"benchmarks": []}))
        with pytest.raises(ValueError, match="no benchmarks"):
            load_baseline(str(path))


class TestVerdicts:
    def test_committed_baseline_is_clean(self, clean_report):
        """Acceptance: the sentry, run for real against the committed
        baseline, reports CLEAN (the repo has not regressed itself)."""
        assert clean_report.verdict == "CLEAN"
        assert not clean_report.regressed
        assert {case.name for case in clean_report.cases} == {
            "test_chain_update_paper_scale",
            "test_output_sample_paper_scale",
        }
        for case in clean_report.cases:
            assert case.ratio <= 1.0 + case.rel_tolerance

    def test_injected_2x_slowdown_regresses(self):
        """Acceptance: a synthetic 2x slowdown must flip the verdict."""
        report = run_sentry(BASELINE, slowdown=2.0, **FAST)
        assert report.verdict == "REGRESS"
        assert report.regressed
        assert any(case.regressed for case in report.cases)

    def test_report_payload_is_json_document(self, clean_report):
        payload = json.loads(json.dumps(clean_report.to_payload()))
        assert payload["verdict"] == "CLEAN"
        assert payload["baseline_path"] == BASELINE
        assert len(payload["cases"]) == 2
        for case in payload["cases"]:
            assert case["verdict"] in ("CLEAN", "REGRESS")
            assert case["ratio"] > 0.0
        assert "python_version" in payload["observed_metadata"]

    def test_missing_sentry_case_rejected(self, tmp_path):
        path = tmp_path / "partial.json"
        path.write_text(
            json.dumps(
                {
                    "benchmarks": [
                        {
                            "name": "test_chain_update_paper_scale",
                            "stats": {"median": 0.01},
                            "extra_info": {"updates_per_round": 1000},
                        }
                    ]
                }
            )
        )
        with pytest.raises(ValueError, match="missing sentry cases"):
            run_sentry(str(path), **FAST)


def _write_query_baseline(path, service_seconds):
    """A smoke-scale query-service baseline the sentry can recheck fast."""
    path.write_text(
        json.dumps(
            {
                "benchmark": "query_service_batch",
                "model": {"n_nodes": 120, "n_edges": 360},
                "batch": {
                    "n_queries": 5,
                    "n_samples_per_query": 40,
                    "n_condition_groups": 2,
                },
                "settings": {"burn_in": 30, "thinning": 2},
                "service_seconds": service_seconds,
            }
        )
    )
    return str(path)


class TestQueryBaseline:
    def test_loads_committed_snapshot(self):
        baseline = load_query_baseline(QUERY_BASELINE)
        assert baseline.n_nodes == 6000
        assert baseline.n_edges == 14_000
        assert baseline.per_unit_seconds == baseline.service_seconds / (
            baseline.n_samples_per_query * baseline.n_condition_groups
        )
        assert 0.0 < baseline.per_unit_seconds < baseline.service_seconds

    def test_rejects_pytest_benchmark_snapshot(self):
        with pytest.raises(ValueError, match="query_service_batch"):
            load_query_baseline(BASELINE)

    def test_rejects_missing_field(self, tmp_path):
        path = tmp_path / "partial.json"
        path.write_text(
            json.dumps(
                {
                    "benchmark": "query_service_batch",
                    "model": {"n_nodes": 10, "n_edges": 20},
                    "service_seconds": 1.0,
                }
            )
        )
        with pytest.raises(ValueError, match="missing field 'batch'"):
            load_query_baseline(str(path))


class TestQueryGate:
    """The end-to-end batch-latency gate riding along in run_sentry."""

    @pytest.fixture(scope="class")
    def query_report(self, tmp_path_factory):
        """One real query-case measurement against a generous baseline."""
        path = tmp_path_factory.mktemp("sentry") / "query.json"
        return run_sentry(
            BASELINE,
            rel_tolerance=CLEAN_TOLERANCE,
            query_baseline_path=_write_query_baseline(path, 3600.0),
            query_samples=6,
            rounds=2,
            warmup=1,
            update_batch=500,
        )

    def test_query_case_joins_the_report(self, query_report):
        assert {case.name for case in query_report.cases} == {
            "test_chain_update_paper_scale",
            "test_output_sample_paper_scale",
            "query_service_batch",
        }
        assert query_report.query_baseline_path is not None
        payload = query_report.to_payload()
        assert payload["query_baseline_path"] == query_report.query_baseline_path

    def test_clean_against_generous_baseline(self, query_report):
        case = next(
            c for c in query_report.cases if c.name == "query_service_batch"
        )
        assert not case.regressed
        assert case.observed_per_unit_seconds > 0.0

    def test_injected_query_slowdown_regresses(self, query_report, tmp_path):
        """Acceptance: a query-path-only slowdown must flip the verdict.

        The baseline is calibrated to what this machine just measured,
        so a 50x injection lands at ratio ~= 50 regardless of host
        speed -- and the non-query cases stay untouched, proving the
        new gate (not the old ones) caught it.
        """
        case = next(
            c for c in query_report.cases if c.name == "query_service_batch"
        )
        calibrated = case.observed_per_unit_seconds * 40 * 2
        report = run_sentry(
            BASELINE,
            rel_tolerance=CLEAN_TOLERANCE,
            query_baseline_path=_write_query_baseline(
                tmp_path / "calibrated.json", calibrated
            ),
            query_samples=6,
            query_slowdown=50.0,
            rounds=2,
            warmup=1,
            update_batch=500,
        )
        assert report.verdict == "REGRESS"
        regressed = [c.name for c in report.cases if c.regressed]
        assert regressed == ["query_service_batch"]

    def test_no_query_baseline_means_no_query_case(self, clean_report):
        assert all(
            case.name != "query_service_batch" for case in clean_report.cases
        )
        assert clean_report.query_baseline_path is None


class TestParameterValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"rel_tolerance": -0.1},
            {"rounds": 0},
            {"warmup": -1},
            {"update_batch": 0},
            {"slowdown": 0.0},
            {"query_samples": 1},
            {"query_slowdown": 0.0},
        ],
    )
    def test_bad_parameters_rejected(self, kwargs):
        with pytest.raises(ValueError):
            run_sentry(BASELINE, **kwargs)


class TestCli:
    def test_sentry_clean_exit_zero_and_report_artifact(self, tmp_path, capsys):
        from repro.obs.cli import main

        report_path = tmp_path / "report.json"
        code = main(
            [
                "sentry",
                "--baseline", BASELINE,
                "--rounds", "3",
                "--warmup", "2",
                "--update-batch", "500",
                "--rel-tolerance", "1.0",
                "--report", str(report_path),
            ]
        )
        assert code == 0
        assert "CLEAN" in capsys.readouterr().out
        artifact = json.loads(report_path.read_text())
        assert artifact["verdict"] == "CLEAN"

    def test_sentry_regress_exit_one(self, capsys):
        from repro.obs.cli import main

        code = main(
            [
                "sentry",
                "--baseline", BASELINE,
                "--rounds", "3",
                "--warmup", "2",
                "--update-batch", "500",
                "--slowdown", "2.0",
                "--json",
            ]
        )
        assert code == 1
        assert json.loads(capsys.readouterr().out)["verdict"] == "REGRESS"

    def test_sentry_query_gate_flags_and_exit_codes(self, tmp_path, capsys):
        from repro.obs.cli import main

        report_path = tmp_path / "report.json"
        code = main(
            [
                "sentry",
                "--baseline", BASELINE,
                "--query-baseline",
                _write_query_baseline(tmp_path / "query.json", 3600.0),
                "--query-samples", "6",
                "--rounds", "2",
                "--warmup", "1",
                "--update-batch", "500",
                "--rel-tolerance", "1.0",
                "--report", str(report_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "query baseline:" in out
        assert "query_service_batch" in out
        artifact = json.loads(report_path.read_text())
        assert len(artifact["cases"]) == 3
        case = next(
            c for c in artifact["cases"] if c["name"] == "query_service_batch"
        )
        calibrated = case["observed_per_unit_seconds"] * 40 * 2
        code = main(
            [
                "sentry",
                "--baseline", BASELINE,
                "--query-baseline",
                _write_query_baseline(tmp_path / "calibrated.json", calibrated),
                "--query-samples", "6",
                "--query-slowdown", "50.0",
                "--rounds", "2",
                "--warmup", "1",
                "--update-batch", "500",
                "--rel-tolerance", "1.0",
                "--json",
            ]
        )
        assert code == 1
        assert json.loads(capsys.readouterr().out)["verdict"] == "REGRESS"

    def test_bad_input_exit_two(self, tmp_path, capsys):
        from repro.obs.cli import main

        code = main(["sentry", "--baseline", str(tmp_path / "missing.json")])
        assert code == 2
        assert "error" in capsys.readouterr().err

    def test_analyze_bad_trace_exit_two(self, tmp_path, capsys):
        from repro.obs.cli import main

        path = tmp_path / "trace.jsonl"
        path.write_text("garbage\n")
        code = main(["analyze", str(path)])
        assert code == 2
        assert "error" in capsys.readouterr().err


def _write_ingest_baseline(path, per_event_seconds):
    """A smoke-scale ingest baseline the sentry can recheck fast."""
    path.write_text(
        json.dumps(
            {
                "benchmark": "ingest_absorb",
                "model": {"n_nodes": 60, "n_edges": 180},
                "stream": {"n_events": 40, "batch_size": 10, "seed": 3},
                "per_event_absorb_seconds": per_event_seconds,
            }
        )
    )
    return str(path)


class TestIngestBaseline:
    def test_loads_committed_snapshot(self):
        from repro.obs.sentry import load_ingest_baseline

        baseline = load_ingest_baseline("BENCH_ingest.json")
        assert baseline.n_nodes == 6000
        assert baseline.n_edges == 14_000
        assert baseline.batch_size > 0
        assert 0.0 < baseline.per_event_absorb_seconds < 1.0

    def test_rejects_pytest_benchmark_snapshot(self):
        from repro.obs.sentry import load_ingest_baseline

        with pytest.raises(ValueError, match="ingest_absorb"):
            load_ingest_baseline(BASELINE)

    def test_rejects_missing_field(self, tmp_path):
        from repro.obs.sentry import load_ingest_baseline

        path = tmp_path / "partial.json"
        path.write_text(
            json.dumps(
                {
                    "benchmark": "ingest_absorb",
                    "model": {"n_nodes": 10, "n_edges": 20},
                }
            )
        )
        with pytest.raises(ValueError, match="missing field 'stream'"):
            load_ingest_baseline(str(path))

    def test_workload_is_deterministic(self):
        from repro.graph.generators import random_icm
        from repro.obs.sentry import ingest_workload

        model = random_icm(30, 90, rng=0, probability_range=(0.01, 0.6))
        first = ingest_workload(model, 10, seed=3)
        second = ingest_workload(model, 10, seed=3)
        assert first == second
        assert all(event.model == "ingest" for event in first)


class TestIngestGate:
    """The streaming-absorb gate riding along in run_sentry."""

    @pytest.fixture(scope="class")
    def ingest_report(self, tmp_path_factory):
        """One real ingest-case measurement against a generous baseline."""
        path = tmp_path_factory.mktemp("sentry") / "ingest.json"
        return run_sentry(
            BASELINE,
            rel_tolerance=CLEAN_TOLERANCE,
            ingest_baseline_path=_write_ingest_baseline(path, 10.0),
            ingest_events=20,
            rounds=2,
            warmup=1,
            update_batch=500,
        )

    def test_ingest_case_joins_the_report(self, ingest_report):
        assert {case.name for case in ingest_report.cases} == {
            "test_chain_update_paper_scale",
            "test_output_sample_paper_scale",
            "ingest_absorb",
        }
        assert ingest_report.ingest_baseline_path is not None
        payload = ingest_report.to_payload()
        assert payload["ingest_baseline_path"] == (
            ingest_report.ingest_baseline_path
        )

    def test_clean_against_generous_baseline(self, ingest_report):
        case = next(
            c for c in ingest_report.cases if c.name == "ingest_absorb"
        )
        assert not case.regressed
        assert case.observed_per_unit_seconds > 0.0

    def test_injected_ingest_slowdown_regresses(self, ingest_report, tmp_path):
        """Acceptance: an absorb-path-only slowdown must flip the verdict.

        The baseline is calibrated to what this machine just measured,
        so a 50x injection lands at ratio ~= 50 regardless of host
        speed -- and the non-ingest cases stay untouched, proving the
        new gate (not the old ones) caught it.
        """
        case = next(
            c for c in ingest_report.cases if c.name == "ingest_absorb"
        )
        report = run_sentry(
            BASELINE,
            rel_tolerance=CLEAN_TOLERANCE,
            ingest_baseline_path=_write_ingest_baseline(
                tmp_path / "calibrated.json",
                case.observed_per_unit_seconds,
            ),
            ingest_events=20,
            ingest_slowdown=50.0,
            rounds=2,
            warmup=1,
            update_batch=500,
        )
        assert report.verdict == "REGRESS"
        regressed = [c.name for c in report.cases if c.regressed]
        assert regressed == ["ingest_absorb"]

    def test_no_ingest_baseline_means_no_ingest_case(self, clean_report):
        assert all(
            case.name != "ingest_absorb" for case in clean_report.cases
        )
        assert clean_report.ingest_baseline_path is None

    @pytest.mark.parametrize(
        "kwargs",
        [{"ingest_events": 0}, {"ingest_slowdown": 0.0}],
    )
    def test_bad_ingest_parameters_rejected(self, kwargs):
        with pytest.raises(ValueError):
            run_sentry(BASELINE, **kwargs)

    def test_cli_ingest_gate_flags(self, tmp_path, capsys):
        from repro.obs.cli import main

        report_path = tmp_path / "report.json"
        code = main(
            [
                "sentry",
                "--baseline", BASELINE,
                "--ingest-baseline",
                _write_ingest_baseline(tmp_path / "ingest.json", 10.0),
                "--ingest-events", "20",
                "--rounds", "2",
                "--warmup", "1",
                "--update-batch", "500",
                "--rel-tolerance", "1.0",
                "--report", str(report_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "ingest baseline:" in out
        assert "ingest_absorb" in out
        artifact = json.loads(report_path.read_text())
        assert len(artifact["cases"]) == 3


def _write_load_baseline(path, per_op_seconds, n_ops=8):
    """A smoke-scale scenario-load baseline the sentry can recheck fast.

    Embeds the scenario test suite's tiny spec so the sentry's recompile
    step finishes in seconds.
    """
    from tests.scenarios.conftest import tiny_spec

    path.write_text(
        json.dumps(
            {
                "benchmark": "scenario_load",
                "spec": tiny_spec().to_payload(),
                "fingerprint": "recomputed-by-the-gate",
                "gate": {"n_ops": n_ops, "per_op_seconds": per_op_seconds},
            }
        )
    )
    return str(path)


class TestScenarioLoadBaseline:
    def test_loads_committed_snapshot(self):
        from repro.obs.sentry import load_load_baseline

        baseline = load_load_baseline("BENCH_load.json")
        assert baseline.n_ops == 50
        assert 0.0 < baseline.per_op_seconds < 10.0
        assert baseline.spec["name"] == "paper-scale"
        assert len(baseline.fingerprint) == 64

    def test_committed_fingerprint_matches_embedded_spec(self):
        """The committed baseline self-describes: hashing its embedded
        spec reproduces the fingerprint it claims."""
        from repro.obs.sentry import load_load_baseline
        from repro.scenarios.spec import spec_fingerprint, spec_from_payload

        baseline = load_load_baseline("BENCH_load.json")
        assert (
            spec_fingerprint(spec_from_payload(baseline.spec))
            == baseline.fingerprint
        )

    def test_rejects_pytest_benchmark_snapshot(self):
        from repro.obs.sentry import load_load_baseline

        with pytest.raises(ValueError, match="scenario_load"):
            load_load_baseline(BASELINE)

    def test_rejects_missing_field(self, tmp_path):
        from repro.obs.sentry import load_load_baseline

        path = tmp_path / "partial.json"
        path.write_text(
            json.dumps({"benchmark": "scenario_load", "spec": {"name": "x"}})
        )
        with pytest.raises(ValueError, match="missing field"):
            load_load_baseline(str(path))

    def test_rejects_invalid_embedded_spec(self, tmp_path):
        from repro.obs.sentry import load_load_baseline

        path = tmp_path / "drifted.json"
        path.write_text(
            json.dumps(
                {
                    "benchmark": "scenario_load",
                    "spec": {"name": "x", "surprise": 1},
                    "fingerprint": "f",
                    "gate": {"n_ops": 5, "per_op_seconds": 0.1},
                }
            )
        )
        with pytest.raises(ValueError, match="embedded scenario spec"):
            load_load_baseline(str(path))


class TestLoadGate:
    """The scenario load-replay gate riding along in run_sentry."""

    @pytest.fixture(scope="class")
    def load_report(self, tmp_path_factory):
        """One real load-case measurement against a generous baseline."""
        path = tmp_path_factory.mktemp("sentry") / "load.json"
        return run_sentry(
            BASELINE,
            rel_tolerance=CLEAN_TOLERANCE,
            load_baseline_path=_write_load_baseline(path, 10.0),
            load_ops=8,
            rounds=2,
            warmup=1,
            update_batch=500,
        )

    def test_load_case_joins_the_report(self, load_report):
        assert {case.name for case in load_report.cases} == {
            "test_chain_update_paper_scale",
            "test_output_sample_paper_scale",
            "scenario_load",
        }
        assert load_report.load_baseline_path is not None
        payload = load_report.to_payload()
        assert payload["load_baseline_path"] == load_report.load_baseline_path

    def test_clean_against_generous_baseline(self, load_report):
        case = next(
            c for c in load_report.cases if c.name == "scenario_load"
        )
        assert not case.regressed
        assert case.observed_per_unit_seconds > 0.0
        assert case.baseline_per_unit_seconds == 10.0

    def test_injected_load_slowdown_regresses(self, load_report, tmp_path):
        """Acceptance: a replay-path-only slowdown must flip the verdict.

        The baseline is calibrated to what this machine just measured,
        so a 50x injection lands at ratio ~= 50 regardless of host
        speed -- and the non-load cases stay untouched, proving the new
        gate (not the old ones) caught it.
        """
        case = next(
            c for c in load_report.cases if c.name == "scenario_load"
        )
        report = run_sentry(
            BASELINE,
            rel_tolerance=CLEAN_TOLERANCE,
            load_baseline_path=_write_load_baseline(
                tmp_path / "calibrated.json",
                case.observed_per_unit_seconds,
            ),
            load_ops=8,
            load_slowdown=50.0,
            rounds=2,
            warmup=1,
            update_batch=500,
        )
        assert report.verdict == "REGRESS"
        regressed = [c.name for c in report.cases if c.regressed]
        assert regressed == ["scenario_load"]

    def test_no_load_baseline_means_no_load_case(self, clean_report):
        assert all(
            case.name != "scenario_load" for case in clean_report.cases
        )
        assert clean_report.load_baseline_path is None

    @pytest.mark.parametrize(
        "kwargs",
        [{"load_ops": 0}, {"load_slowdown": 0.0}],
    )
    def test_bad_load_parameters_rejected(self, kwargs):
        with pytest.raises(ValueError):
            run_sentry(BASELINE, **kwargs)

    def test_cli_load_gate_flags(self, tmp_path, capsys):
        from repro.obs.cli import main

        report_path = tmp_path / "report.json"
        code = main(
            [
                "sentry",
                "--baseline", BASELINE,
                "--load-baseline",
                _write_load_baseline(tmp_path / "load.json", 10.0),
                "--load-ops", "8",
                "--rounds", "2",
                "--warmup", "1",
                "--update-batch", "500",
                "--rel-tolerance", "1.0",
                "--report", str(report_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "load baseline:" in out
        assert "scenario_load" in out
        artifact = json.loads(report_path.read_text())
        assert len(artifact["cases"]) == 3
