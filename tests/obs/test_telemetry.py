"""Chain telemetry: step accounting, window diagnostics, sampler wiring."""

import math
import threading

import numpy as np
import pytest

from repro.graph.generators import random_icm
from repro.mcmc.chain import ChainSettings, MetropolisHastingsChain
from repro.mcmc.parallel import ParallelFlowEstimator
from repro.obs.telemetry import GEWEKE_MIN_SAMPLES, ChainTelemetry
from repro.service.bank import SampleBank


@pytest.fixture(scope="module")
def model():
    return random_icm(20, 60, rng=5, probability_range=(0.1, 0.9))


class TestStepAccounting:
    def test_on_steps_accumulates(self):
        telemetry = ChainTelemetry()
        telemetry.on_steps("c", 100, 40)
        telemetry.on_steps("c", 50, 10)
        assert telemetry.acceptance_rate("c") == pytest.approx(50 / 150)

    def test_unknown_chain_reports_nan(self):
        telemetry = ChainTelemetry()
        assert math.isnan(telemetry.acceptance_rate("missing"))
        assert telemetry.windows("missing") == ()
        assert telemetry.ess_trajectory("missing") == ()

    def test_invalid_counts_rejected(self):
        telemetry = ChainTelemetry()
        with pytest.raises(ValueError):
            telemetry.on_steps("c", -1, 0)
        with pytest.raises(ValueError):
            telemetry.on_steps("c", 5, 6)
        with pytest.raises(ValueError):
            telemetry.record_window("c", [1.0], steps=2, accepted=3)

    def test_concurrent_on_steps(self):
        telemetry = ChainTelemetry()
        n_threads, per_thread = 8, 500
        barrier = threading.Barrier(n_threads)

        def hammer():
            barrier.wait()
            for _ in range(per_thread):
                telemetry.on_steps("shared", 2, 1)

        threads = [threading.Thread(target=hammer) for _ in range(n_threads)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        snapshot = telemetry.snapshot()["shared"]
        assert snapshot["steps"] == n_threads * per_thread * 2
        assert snapshot["accepted_steps"] == n_threads * per_thread


class TestWindows:
    def test_window_diagnostics(self):
        telemetry = ChainTelemetry()
        trace = [1.0, 3.0, 2.0, 4.0, 1.5, 2.5, 3.5, 1.0, 2.0, 3.0, 4.0, 2.2]
        window = telemetry.record_window("c", trace, steps=24, accepted=12)
        assert window.window_index == 0
        assert window.n_samples == len(trace)
        assert window.cumulative_samples == len(trace)
        assert window.acceptance_rate == pytest.approx(0.5)
        assert window.ess > 0.0
        assert not math.isnan(window.geweke_z)  # >= GEWEKE_MIN_SAMPLES samples

    def test_short_trace_geweke_is_nan(self):
        telemetry = ChainTelemetry()
        window = telemetry.record_window("c", [1.0] * (GEWEKE_MIN_SAMPLES - 1))
        assert math.isnan(window.geweke_z)

    def test_ess_trajectory_grows_with_windows(self):
        telemetry = ChainTelemetry()
        rng = np.random.default_rng(0)
        for _ in range(3):
            telemetry.record_window("c", rng.normal(size=50).tolist())
        trajectory = telemetry.ess_trajectory("c")
        assert len(trajectory) == 3
        # iid noise: cumulative ESS grows with the cumulative sample count
        assert trajectory[0] < trajectory[1] < trajectory[2]

    def test_snapshot_reports_last_window(self):
        telemetry = ChainTelemetry()
        telemetry.record_window("c", [1.0, 2.0] * 10, steps=40, accepted=20)
        snapshot = telemetry.snapshot()["c"]
        assert snapshot["n_windows"] == 1
        assert snapshot["n_samples"] == 20
        assert snapshot["acceptance_rate"] == pytest.approx(0.5)
        assert snapshot["ess"] > 0.0


class TestChainWiring:
    def test_chain_reports_steps_including_burn_in(self, model):
        telemetry = ChainTelemetry()
        settings = ChainSettings(burn_in=30, thinning=1)
        chain = MetropolisHastingsChain(
            model,
            settings=settings,
            rng=1,
            telemetry=telemetry,
            chain_id="unit",
        )
        chain.run(70)
        snapshot = telemetry.snapshot()["unit"]
        assert snapshot["steps"] == 100  # 30 burn-in + 70 explicit
        assert snapshot["steps"] == chain.steps
        assert snapshot["accepted_steps"] == chain.accepted_steps

    def test_fixed_seed_capture_is_reproducible(self, model):
        def capture():
            telemetry = ChainTelemetry()
            chain = MetropolisHastingsChain(
                model,
                settings=ChainSettings(burn_in=20, thinning=0),
                rng=7,
                telemetry=telemetry,
                chain_id="c",
            )
            chain.run(200)
            return telemetry.snapshot()["c"]

        assert capture() == capture()

    def test_telemetry_does_not_perturb_the_trajectory(self, model):
        settings = ChainSettings(burn_in=20, thinning=0)
        plain = MetropolisHastingsChain(model, settings=settings, rng=3)
        watched = MetropolisHastingsChain(
            model, settings=settings, rng=3, telemetry=ChainTelemetry()
        )
        plain.run(150)
        watched.run(150)
        assert np.array_equal(plain.state, watched.state)
        assert plain.accepted_steps == watched.accepted_steps


class TestBankAndEstimatorWiring:
    def test_bank_records_one_window_per_chain_per_growth(self, model):
        telemetry = ChainTelemetry()
        bank = SampleBank(
            model,
            settings=ChainSettings(burn_in=10, thinning=0),
            rng=0,
            n_chains=2,
            telemetry=telemetry,
            bank_id="b",
        )
        bank.grow(40)
        bank.grow(40)
        assert telemetry.chain_ids() == ["b/chain-0", "b/chain-1"]
        for chain_id in telemetry.chain_ids():
            windows = telemetry.windows(chain_id)
            assert [w.window_index for w in windows] == [0, 1]
            assert sum(w.n_samples for w in windows) == 40
            # step deltas across windows reconstruct the chain totals
            total_steps = sum(w.steps for w in windows)
            snapshot = telemetry.snapshot()[chain_id]
            assert snapshot["steps"] == total_steps

    def test_bank_window_steps_match_chain_accounting(self, model):
        telemetry = ChainTelemetry()
        settings = ChainSettings(burn_in=10, thinning=2)
        bank = SampleBank(
            model,
            settings=settings,
            rng=0,
            n_chains=1,
            telemetry=telemetry,
            bank_id="b",
        )
        bank.grow(30)
        (window,) = telemetry.windows("b/chain-0")
        # first window includes burn-in plus thinning strides
        assert window.steps == settings.burn_in + 30 * (settings.thinning + 1)

    def test_parallel_estimator_records_per_chain_windows(self, model):
        telemetry = ChainTelemetry()
        estimator = ParallelFlowEstimator(
            model,
            n_chains=3,
            settings=ChainSettings(burn_in=10, thinning=0),
            rng=0,
            executor="serial",
            telemetry=telemetry,
        )
        nodes = model.graph.nodes()
        result = estimator.estimate_flow_probabilities(
            [(nodes[0], nodes[3])], n_samples=60
        )
        assert telemetry.chain_ids() == ["chain-0", "chain-1", "chain-2"]
        for index, chain_id in enumerate(telemetry.chain_ids()):
            (window,) = telemetry.windows(chain_id)
            assert window.n_samples == result.samples_per_chain[index]
            assert window.ess == pytest.approx(result.ess_per_chain[index])
