"""The repro-obs CLI: flame summaries and end-to-end analyze joins."""

import json

import pytest

from repro.obs.cli import main


def _write_jsonl(path, rows):
    path.write_text("".join(json.dumps(row) + "\n" for row in rows))


def _span(name, span_id, duration_ns, trace_id=None, parent_id=None, **attrs):
    return {
        "name": name,
        "span_id": span_id,
        "parent_id": parent_id,
        "start_ns": 0,
        "end_ns": duration_ns,
        "duration_ns": duration_ns,
        "attributes": attrs,
        "trace_id": trace_id,
    }


class TestFlameCommand:
    @pytest.fixture
    def folded(self, tmp_path):
        path = tmp_path / "profile.folded"
        path.write_text(
            "main:run;mcmc:step 70\n"
            "main:run;mcmc:step;mcmc:accept 20\n"
            "main:run;io:read 10\n"
        )
        return path

    def test_table_output(self, folded, capsys):
        assert main(["flame", str(folded)]) == 0
        out = capsys.readouterr().out
        assert "100 samples over 3 distinct stacks" in out
        assert "mcmc:step" in out

    def test_json_output(self, folded, capsys):
        assert main(["flame", str(folded), "--json", "--top", "2"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["total_samples"] == 100
        assert payload["n_stacks"] == 3
        assert len(payload["frames"]) == 2
        hottest = payload["frames"][0]
        assert hottest["frame"] == "mcmc:step"
        assert hottest["self_samples"] == 70
        assert hottest["total_samples"] == 90

    def test_malformed_folded_is_exit_2(self, tmp_path, capsys):
        path = tmp_path / "bad.folded"
        path.write_text("no-count-here\n")
        assert main(["flame", str(path)]) == 2

    def test_missing_file_is_exit_2(self, tmp_path):
        assert main(["flame", str(tmp_path / "absent.folded")]) == 2


class TestAnalyzeServerTrace:
    def test_join_appears_in_json_output(self, tmp_path, capsys):
        trace = "e" * 32
        client = tmp_path / "client.jsonl"
        server = tmp_path / "server.jsonl"
        _write_jsonl(
            client,
            [
                _span(
                    "loadgen.request", 1, 5_000, trace_id=trace,
                    kind="marginal", request_id="abc123",
                )
            ],
        )
        _write_jsonl(
            server,
            [
                _span("http.request", 1, 3_000, trace_id=trace),
                _span(
                    "service.query_batch", 2, 2_000, trace_id=trace,
                    parent_id=1,
                ),
            ],
        )
        assert main(
            [
                "analyze", str(client), "--server-trace", str(server),
                "--json",
            ]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        report = payload["end_to_end"]
        assert report["match_ratio"] == 1.0
        assert report["queueing"]["marginal"]["p50_ns"] == 2_000.0
        join = report["joins"][0]
        assert join["request_id"] == "abc123"
        assert join["queueing_ns"] == 2_000

    def test_table_output_mentions_join(self, tmp_path, capsys):
        trace = "f" * 32
        client = tmp_path / "client.jsonl"
        server = tmp_path / "server.jsonl"
        _write_jsonl(
            client,
            [_span("loadgen.request", 1, 5_000, trace_id=trace, kind="k")],
        )
        _write_jsonl(server, [_span("http.request", 1, 3_000, trace_id=trace)])
        assert main(
            ["analyze", str(client), "--server-trace", str(server)]
        ) == 0
        out = capsys.readouterr().out
        assert "End-to-end" in out

    def test_analyze_without_server_trace_still_works(self, tmp_path, capsys):
        client = tmp_path / "client.jsonl"
        _write_jsonl(client, [_span("phase", 1, 1_000)])
        assert main(["analyze", str(client)]) == 0
        assert "End-to-end" not in capsys.readouterr().out
