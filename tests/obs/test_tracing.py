"""Spans: nesting, timing, export, the @traced decorator, no-op path."""

import json
import threading

import pytest

from repro.obs.tracing import (
    Tracer,
    disable_tracing,
    enable_tracing,
    get_tracer,
    traced,
)


@pytest.fixture
def tracer():
    return Tracer(enabled=True)


class TestSpanBasics:
    def test_span_records_duration(self, tracer):
        with tracer.span("work") as span:
            pass
        (finished,) = tracer.finished_spans()
        assert finished is span
        assert finished.end_ns is not None
        assert finished.duration_ns >= 0

    def test_attributes_at_open_and_during(self, tracer):
        with tracer.span("work", kind="test") as span:
            span.set_attribute("items", 3)
        (finished,) = tracer.finished_spans()
        assert finished.attributes == {"kind": "test", "items": 3}

    def test_payload_is_json_serialisable(self, tracer):
        with tracer.span("work", model="m"):
            pass
        payload = tracer.finished_spans()[0].to_payload()
        line = json.dumps(payload)
        decoded = json.loads(line)
        assert decoded["name"] == "work"
        assert decoded["parent_id"] is None
        assert decoded["duration_ns"] == payload["duration_ns"]


class TestNesting:
    def test_child_records_parent_id(self, tracer):
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                assert inner.parent_id == outer.span_id
        inner_done, outer_done = tracer.finished_spans()
        assert inner_done.name == "inner"
        assert inner_done.parent_id == outer_done.span_id
        assert outer_done.parent_id is None

    def test_current_span_tracks_innermost(self, tracer):
        assert tracer.current_span() is None
        with tracer.span("outer") as outer:
            assert tracer.current_span() is outer
            with tracer.span("inner") as inner:
                assert tracer.current_span() is inner
            assert tracer.current_span() is outer
        assert tracer.current_span() is None

    def test_siblings_share_a_parent(self, tracer):
        with tracer.span("parent") as parent:
            with tracer.span("a"):
                pass
            with tracer.span("b"):
                pass
        spans = {span.name: span for span in tracer.finished_spans()}
        assert spans["a"].parent_id == parent.span_id
        assert spans["b"].parent_id == parent.span_id

    def test_nesting_is_per_thread(self, tracer):
        seen = {}

        def worker():
            with tracer.span("thread-root") as span:
                seen["parent_id"] = span.parent_id

        with tracer.span("main-root"):
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        # a fresh thread starts a fresh context: no inherited parent
        assert seen["parent_id"] is None

    def test_exception_still_closes_span(self, tracer):
        with pytest.raises(RuntimeError):
            with tracer.span("doomed"):
                raise RuntimeError("boom")
        (finished,) = tracer.finished_spans()
        assert finished.end_ns is not None
        assert tracer.current_span() is None


class TestExport:
    def test_jsonl_round_trip(self, tracer, tmp_path):
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        path = tmp_path / "trace.jsonl"
        count = tracer.export_jsonl(str(path))
        assert count == 2
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 2
        payloads = [json.loads(line) for line in lines]
        by_name = {p["name"]: p for p in payloads}
        assert by_name["inner"]["parent_id"] == by_name["outer"]["span_id"]

    def test_clear_drops_spans(self, tracer):
        with tracer.span("work"):
            pass
        assert len(tracer) == 1
        assert tracer.clear() == 1
        assert len(tracer) == 0

    def test_max_spans_cap_counts_drops(self):
        tracer = Tracer(enabled=True, max_spans=2)
        for index in range(4):
            with tracer.span(f"s{index}"):
                pass
        assert len(tracer) == 2
        assert tracer.dropped_spans == 2


class TestDisabled:
    def test_disabled_span_yields_none(self):
        tracer = Tracer(enabled=False)
        with tracer.span("work") as span:
            assert span is None
        assert len(tracer) == 0

    def test_enable_disable_round_trip(self):
        tracer = Tracer(enabled=False)
        tracer.enable()
        with tracer.span("work"):
            pass
        tracer.disable()
        with tracer.span("ignored"):
            pass
        assert [span.name for span in tracer.finished_spans()] == ["work"]


class TestTracedDecorator:
    @pytest.fixture(autouse=True)
    def _restore_global_tracer(self):
        tracer = get_tracer()
        was_enabled = tracer.enabled
        yield
        tracer.clear()
        (enable_tracing if was_enabled else disable_tracing)()

    def test_bare_decorator_uses_qualname(self):
        @traced
        def do_work(x):
            return x + 1

        enable_tracing()
        assert do_work(1) == 2
        names = [span.name for span in get_tracer().finished_spans()]
        assert any("do_work" in name for name in names)

    def test_named_decorator(self):
        @traced("custom.name")
        def do_work():
            return 42

        enable_tracing()
        assert do_work() == 42
        assert [s.name for s in get_tracer().finished_spans()] == ["custom.name"]

    def test_disabled_tracer_delegates_without_recording(self):
        @traced("never")
        def do_work():
            return "ok"

        disable_tracing()
        assert do_work() == "ok"
        assert len(get_tracer()) == 0

    def test_wrapper_preserves_metadata(self):
        @traced("meta")
        def documented():
            """Docstring survives wrapping."""

        assert documented.__name__ == "documented"
        assert documented.__doc__ == "Docstring survives wrapping."


class TestConcurrentExport:
    def test_concurrent_spans_export_valid_jsonl(self, tmp_path):
        """Spans finished by many threads at once export as valid,
        non-interleaved JSON Lines (the --trace-out path)."""
        tracer = Tracer(enabled=True)
        n_threads, per_thread = 8, 50
        barrier = threading.Barrier(n_threads)

        def worker(thread_id):
            barrier.wait()
            for iteration in range(per_thread):
                with tracer.span(f"outer-{thread_id}", i=iteration):
                    with tracer.span(f"inner-{thread_id}"):
                        pass

        threads = [
            threading.Thread(target=worker, args=(thread_id,))
            for thread_id in range(n_threads)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        path = tmp_path / "trace.jsonl"
        expected = n_threads * per_thread * 2
        assert tracer.export_jsonl(str(path)) == expected
        assert tracer.dropped_spans == 0

        lines = path.read_text(encoding="utf-8").splitlines()
        assert len(lines) == expected  # no interleaved / torn lines
        span_ids = set()
        payloads = {}
        for line in lines:
            payload = json.loads(line)  # every line is one valid object
            assert {"name", "span_id", "parent_id", "duration_ns"} <= set(payload)
            span_ids.add(payload["span_id"])
            payloads[payload["span_id"]] = payload
        assert len(span_ids) == expected  # ids unique across threads
        # nesting survived concurrency: every inner span's parent is an
        # outer span of the *same* thread
        for payload in payloads.values():
            if payload["name"].startswith("inner-"):
                thread_id = payload["name"].split("-", 1)[1]
                parent = payloads[payload["parent_id"]]
                assert parent["name"] == f"outer-{thread_id}"
