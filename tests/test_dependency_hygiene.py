"""The core library must run with numpy alone.

``pyproject.toml`` declares only numpy as a runtime dependency; scipy,
networkx, hypothesis and the pytest stack are test/benchmark extras.
These tests import the whole library in a subprocess where scipy and
networkx are poisoned, proving no module quietly grew a hard dependency.
"""

import subprocess
import sys

BLOCKER = """
import sys

class _Blocked:
    def find_module(self, name, path=None):
        if name.split(".")[0] in ("scipy", "networkx"):
            raise ImportError(f"{name} is blocked for this test")
        return None

sys.meta_path.insert(0, _Blocked())

import repro
import repro.applications
import repro.baselines
import repro.core
import repro.evaluation
import repro.experiments
import repro.extensions
import repro.graph
import repro.io
import repro.learning
import repro.mcmc
import repro.service
import repro.twitter

# and a tiny end-to-end exercise touching every subsystem
from repro import (
    DiGraph, ICM, estimate_flow_probability, simulate_cascade,
    train_beta_icm, AttributedEvidence,
)
from repro.learning import attributed_from_cascade
from repro.evaluation import bucket_experiment, PredictionPair

graph = DiGraph(edges=[("a", "b"), ("b", "c")])
truth = ICM(graph, [0.6, 0.5])
evidence = AttributedEvidence()
for seed in range(50):
    evidence.add(attributed_from_cascade(truth, simulate_cascade(truth, ["a"], rng=seed)))
model = train_beta_icm(graph, evidence)
estimate = estimate_flow_probability(model, "a", "c", n_samples=200, rng=0)
bucket_experiment([PredictionPair(estimate.probability, True)], n_bins=5)

from repro import FlowQuery, FlowQueryService
service = FlowQueryService(rng=0)
service.register("m", model)
result = service.query("m", FlowQuery.marginal("a", "c"), n_samples=64)
assert 0.0 <= result.value <= 1.0
print("OK")
"""


def test_library_runs_without_scipy_or_networkx():
    result = subprocess.run(
        [sys.executable, "-c", BLOCKER],
        capture_output=True,
        text=True,
        timeout=180,
    )
    assert result.returncode == 0, result.stderr
    assert "OK" in result.stdout
