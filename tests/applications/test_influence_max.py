"""Tests for greedy influence maximisation."""

import numpy as np
import pytest

from repro.applications.influence_max import (
    SeedSelection,
    estimate_spread,
    greedy_influence_maximisation,
)
from repro.core.icm import ICM
from repro.graph.digraph import DiGraph
from repro.graph.generators import random_icm


@pytest.fixture
def two_star_model():
    """Two disjoint stars: hub0 (strong, 4 leaves), hub1 (weak, 2 leaves)."""
    graph = DiGraph()
    for i in range(4):
        graph.add_edge("hub0", f"leaf0_{i}")
    for i in range(2):
        graph.add_edge("hub1", f"leaf1_{i}")
    probabilities = [0.9] * 4 + [0.9] * 2
    return ICM(graph, probabilities)


class TestEstimateSpread:
    def test_empty_seeds_zero(self, two_star_model):
        assert estimate_spread(two_star_model, []) == 0.0

    def test_isolated_seed_spread_one(self):
        graph = DiGraph(nodes=["x"])
        model = ICM(graph, [])
        assert estimate_spread(model, ["x"], n_simulations=10, rng=0) == 1.0

    def test_matches_expected_value(self, two_star_model):
        # hub0 + 4 leaves at 0.9: expected spread = 1 + 4*0.9 = 4.6
        spread = estimate_spread(
            two_star_model, ["hub0"], n_simulations=4000, rng=0
        )
        assert spread == pytest.approx(4.6, abs=0.15)

    def test_invalid_simulations(self, two_star_model):
        with pytest.raises(ValueError):
            estimate_spread(two_star_model, ["hub0"], n_simulations=0)


class TestGreedySelection:
    def test_picks_strong_hub_first(self, two_star_model):
        result = greedy_influence_maximisation(
            two_star_model, k=2, n_simulations=400, rng=0
        )
        assert result.seeds[0] == "hub0"
        assert result.seeds[1] == "hub1"

    def test_spreads_monotone(self, two_star_model):
        result = greedy_influence_maximisation(
            two_star_model, k=3, n_simulations=300, rng=1
        )
        assert list(result.spreads) == sorted(result.spreads)
        assert result.final_spread == result.spreads[-1]

    def test_k_zero(self, two_star_model):
        result = greedy_influence_maximisation(two_star_model, k=0)
        assert result.seeds == ()
        assert result.n_spread_evaluations == 0

    def test_k_capped_at_candidates(self, two_star_model):
        result = greedy_influence_maximisation(
            two_star_model,
            k=10,
            candidates=["hub0", "hub1"],
            n_simulations=100,
            rng=2,
        )
        assert set(result.seeds) == {"hub0", "hub1"}

    def test_negative_k_rejected(self, two_star_model):
        with pytest.raises(ValueError):
            greedy_influence_maximisation(two_star_model, k=-1)

    def test_no_duplicate_seeds(self):
        model = random_icm(15, 60, rng=3, probability_range=(0.05, 0.5))
        result = greedy_influence_maximisation(
            model, k=5, n_simulations=100, rng=4
        )
        assert len(set(result.seeds)) == 5

    def test_celf_saves_evaluations(self):
        model = random_icm(25, 120, rng=5, probability_range=(0.05, 0.5))
        result = greedy_influence_maximisation(
            model, k=5, n_simulations=80, rng=6
        )
        # naive greedy would need ~ k * n = 125 evaluations beyond the
        # initial pass; CELF should stay well below that.
        naive = 25 + 4 * 24
        assert result.n_spread_evaluations < naive

    def test_greedy_beats_random_seeds(self):
        model = random_icm(20, 100, rng=7, probability_range=(0.05, 0.6))
        greedy = greedy_influence_maximisation(
            model, k=3, n_simulations=300, rng=8
        )
        rng = np.random.default_rng(9)
        nodes = model.graph.nodes()
        random_spreads = []
        for _ in range(10):
            random_seeds = list(rng.choice(nodes, size=3, replace=False))
            random_spreads.append(
                estimate_spread(model, random_seeds, n_simulations=300, rng=rng)
            )
        assert greedy.final_spread >= np.mean(random_spreads)

    def test_beta_icm_accepted(self, small_beta_icm):
        result = greedy_influence_maximisation(
            small_beta_icm, k=2, n_simulations=50, rng=10
        )
        assert len(result.seeds) == 2


class TestSubmodularityOnSampledStates:
    def test_marginal_gains_non_increasing(self):
        """Greedy on fixed sampled states sees non-increasing gains --
        the submodularity CELF's lazy evaluation relies on."""
        model = random_icm(18, 80, rng=11, probability_range=(0.05, 0.6))
        result = greedy_influence_maximisation(
            model, k=6, n_simulations=120, rng=12
        )
        gains = np.diff(np.concatenate([[0.0], np.asarray(result.spreads)]))
        for earlier, later in zip(gains, gains[1:]):
            assert later <= earlier + 1e-9

    def test_spread_bounded_by_node_count(self):
        model = random_icm(12, 40, rng=13, probability_range=(0.2, 0.9))
        result = greedy_influence_maximisation(
            model, k=4, n_simulations=100, rng=14
        )
        assert result.final_spread <= model.n_nodes
