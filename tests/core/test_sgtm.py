"""Theorem 1: the SGTM and the ICM are the same model, empirically."""

import numpy as np
import pytest

from repro.core.cascade import simulate_cascade
from repro.core.exact import brute_force_flow_probability
from repro.core.icm import ICM
from repro.core.sgtm import influence_probability, simulate_sgtm_cascade
from repro.graph.digraph import DiGraph
from repro.graph.generators import random_icm


class TestInfluenceProbability:
    def test_no_parents_no_influence(self, triangle_icm):
        assert influence_probability(triangle_icm, [], "v3") == 0.0

    def test_single_parent_is_edge_probability(self, triangle_icm):
        assert influence_probability(
            triangle_icm, ["v2"], "v3"
        ) == pytest.approx(0.8)

    def test_noisy_or_composition(self, triangle_icm):
        # p_v3({v1, v2}) = 1 - (1 - 0.25)(1 - 0.8)
        assert influence_probability(
            triangle_icm, ["v1", "v2"], "v3"
        ) == pytest.approx(1.0 - 0.75 * 0.2)

    def test_non_parents_ignored(self, triangle_icm):
        assert influence_probability(
            triangle_icm, ["v3"], "v2"
        ) == pytest.approx(0.0)


class TestMechanism:
    def test_sources_always_active(self, triangle_icm, rng):
        result = simulate_sgtm_cascade(triangle_icm, ["v1"], rng)
        assert "v1" in result.active_nodes
        assert result.activation_round["v1"] == 0

    def test_requires_source(self, triangle_icm):
        with pytest.raises(ValueError):
            simulate_sgtm_cascade(triangle_icm, [])

    def test_certain_edges_propagate(self):
        graph = DiGraph(edges=[("a", "b"), ("b", "c")])
        model = ICM(graph, [1.0, 1.0])
        result = simulate_sgtm_cascade(model, ["a"], rng=0)
        assert result.active_nodes == frozenset({"a", "b", "c"})

    def test_attribution_points_at_real_parent(self, small_random_icm, rng):
        result = simulate_sgtm_cascade(small_random_icm, ["v0"], rng)
        for node, edge_index in result.attribution.items():
            edge = small_random_icm.graph.edge(edge_index)
            assert edge.dst == node
            assert edge.src in result.active_nodes


class TestTheorem1Equivalence:
    """SGTM and ICM cascades are distributionally identical."""

    def test_single_sink_flow_probability(self, triangle_icm):
        exact = brute_force_flow_probability(triangle_icm, "v1", "v3")
        rng = np.random.default_rng(0)
        hits = sum(
            "v3" in simulate_sgtm_cascade(triangle_icm, ["v1"], rng).active_nodes
            for _ in range(20_000)
        )
        assert hits / 20_000 == pytest.approx(exact, abs=0.015)

    def test_per_node_activation_frequencies_match(self):
        model = random_icm(8, 24, rng=3, probability_range=(0.1, 0.8))
        rng_icm = np.random.default_rng(4)
        rng_sgtm = np.random.default_rng(5)
        n = 12_000
        nodes = model.graph.nodes()
        icm_counts = {node: 0 for node in nodes}
        sgtm_counts = {node: 0 for node in nodes}
        for _ in range(n):
            for node in simulate_cascade(model, ["v0"], rng_icm).active_nodes:
                icm_counts[node] += 1
            for node in simulate_sgtm_cascade(model, ["v0"], rng_sgtm).active_nodes:
                sgtm_counts[node] += 1
        for node in nodes:
            assert icm_counts[node] / n == pytest.approx(
                sgtm_counts[node] / n, abs=0.025
            ), node

    def test_impact_distributions_match(self, triangle_icm):
        rng_icm = np.random.default_rng(6)
        rng_sgtm = np.random.default_rng(7)
        n = 20_000
        icm_impacts = np.array(
            [simulate_cascade(triangle_icm, ["v1"], rng_icm).impact for _ in range(n)]
        )
        sgtm_impacts = np.array(
            [
                simulate_sgtm_cascade(triangle_icm, ["v1"], rng_sgtm).impact
                for _ in range(n)
            ]
        )
        for impact in range(3):
            assert float(np.mean(icm_impacts == impact)) == pytest.approx(
                float(np.mean(sgtm_impacts == impact)), abs=0.015
            )

    def test_multi_source_equivalence(self):
        graph = DiGraph(
            edges=[("a", "c"), ("b", "c"), ("c", "d"), ("a", "d")]
        )
        model = ICM(graph, [0.6, 0.5, 0.4, 0.2])
        rng_icm = np.random.default_rng(8)
        rng_sgtm = np.random.default_rng(9)
        n = 15_000
        icm_d = sum(
            "d" in simulate_cascade(model, ["a", "b"], rng_icm).active_nodes
            for _ in range(n)
        )
        sgtm_d = sum(
            "d" in simulate_sgtm_cascade(model, ["a", "b"], rng_sgtm).active_nodes
            for _ in range(n)
        )
        assert icm_d / n == pytest.approx(sgtm_d / n, abs=0.02)
