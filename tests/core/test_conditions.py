"""Unit tests for flow conditions."""

import numpy as np
import pytest

from repro.core.conditions import FlowCondition, FlowConditionSet
from repro.errors import InfeasibleConditionsError


class TestConstruction:
    def test_empty(self):
        conditions = FlowConditionSet.empty()
        assert len(conditions) == 0
        assert not conditions

    def test_from_tuples(self):
        conditions = FlowConditionSet.from_tuples([("a", "b", True), ("b", "c", 0)])
        assert len(conditions) == 2
        assert conditions.required[0].as_tuple() == ("a", "b", True)
        assert conditions.forbidden[0].as_tuple() == ("b", "c", False)

    def test_duplicates_collapse(self):
        conditions = FlowConditionSet.from_tuples(
            [("a", "b", True), ("a", "b", True)]
        )
        assert len(conditions) == 1

    def test_contradiction_rejected(self):
        with pytest.raises(InfeasibleConditionsError, match="both required"):
            FlowConditionSet.from_tuples([("a", "b", True), ("a", "b", False)])

    def test_partition(self):
        conditions = FlowConditionSet.from_tuples(
            [("a", "b", True), ("c", "d", False), ("e", "f", True)]
        )
        assert len(conditions.required) == 2
        assert len(conditions.forbidden) == 1


class TestSatisfied:
    def test_required_flow(self, triangle_icm):
        conditions = FlowConditionSet.from_tuples([("v1", "v3", True)])
        direct = np.array([False, True, False])
        nothing = np.zeros(3, dtype=bool)
        assert conditions.satisfied(triangle_icm, direct)
        assert not conditions.satisfied(triangle_icm, nothing)

    def test_forbidden_flow(self, triangle_icm):
        conditions = FlowConditionSet.from_tuples([("v1", "v3", False)])
        direct = np.array([False, True, False])
        nothing = np.zeros(3, dtype=bool)
        assert not conditions.satisfied(triangle_icm, direct)
        assert conditions.satisfied(triangle_icm, nothing)

    def test_mixed_conditions(self, triangle_icm):
        conditions = FlowConditionSet.from_tuples(
            [("v1", "v2", True), ("v1", "v3", False)]
        )
        only_v2 = np.array([True, False, False])
        v2_and_v3 = np.array([True, False, True])
        assert conditions.satisfied(triangle_icm, only_v2)
        assert not conditions.satisfied(triangle_icm, v2_and_v3)

    def test_empty_always_satisfied(self, triangle_icm):
        conditions = FlowConditionSet.empty()
        assert conditions.satisfied(triangle_icm, np.zeros(3, dtype=bool))

    def test_validate_against_unknown_node(self, triangle_icm):
        from repro.errors import GraphError

        conditions = FlowConditionSet.from_tuples([("ghost", "v1", True)])
        with pytest.raises(GraphError):
            conditions.validate_against(triangle_icm)
