"""Unit and property tests for pseudo-states and derived flows."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.icm import ICM
from repro.core.pseudo_state import (
    active_edges_from_pseudo_state,
    active_nodes_from_pseudo_state,
    community_flow_count,
    flow_exists,
    pseudo_state_log_probability,
    pseudo_state_probability,
    sample_pseudo_state,
)
from repro.graph.generators import random_icm


class TestProbability:
    def test_factorises_over_edges(self, triangle_icm):
        # p = (0.5, 0.25, 0.8); state (1, 0, 1)
        state = np.array([True, False, True])
        expected = 0.5 * (1 - 0.25) * 0.8
        assert pseudo_state_probability(triangle_icm, state) == pytest.approx(expected)

    def test_all_states_sum_to_one(self, triangle_icm):
        from repro.core.exact import enumerate_pseudo_states

        total = sum(
            pseudo_state_probability(triangle_icm, state)
            for state in enumerate_pseudo_states(3)
        )
        assert total == pytest.approx(1.0)

    def test_log_probability_matches(self, triangle_icm):
        state = np.array([True, True, False])
        assert np.exp(
            pseudo_state_log_probability(triangle_icm, state)
        ) == pytest.approx(pseudo_state_probability(triangle_icm, state))

    def test_impossible_state_is_zero(self, triangle_graph):
        model = ICM(triangle_graph, [0.0, 0.5, 0.5])
        state = np.array([True, False, False])
        assert pseudo_state_probability(model, state) == 0.0
        assert pseudo_state_log_probability(model, state) == -np.inf

    def test_wrong_shape_rejected(self, triangle_icm):
        with pytest.raises(ValueError):
            pseudo_state_probability(triangle_icm, np.array([True]))


class TestActiveState:
    def test_sources_always_active(self, triangle_icm):
        state = np.zeros(3, dtype=bool)
        assert active_nodes_from_pseudo_state(triangle_icm, ["v1"], state) == {"v1"}

    def test_flow_through_chain(self, chain_icm):
        state = np.array([True, True])
        assert active_nodes_from_pseudo_state(chain_icm, ["a"], state) == {
            "a",
            "b",
            "c",
        }

    def test_active_edges_need_active_parents(self, chain_icm):
        # b->c active but a->b not: edge b->c is not information-active.
        state = np.array([False, True])
        assert active_edges_from_pseudo_state(chain_icm, ["a"], state) == frozenset()

    def test_active_edges_include_redundant_arrivals(self, triangle_icm):
        # all edges active: v3 reached twice; both incoming edges active.
        state = np.ones(3, dtype=bool)
        active = active_edges_from_pseudo_state(triangle_icm, ["v1"], state)
        assert active == frozenset({0, 1, 2})


class TestFlowExists:
    def test_trivial_self_flow(self, triangle_icm):
        state = np.zeros(3, dtype=bool)
        assert flow_exists(triangle_icm, "v1", "v1", state)

    def test_direct_flow(self, triangle_icm):
        state = np.array([False, True, False])  # only v1->v3
        assert flow_exists(triangle_icm, "v1", "v3", state)
        assert not flow_exists(triangle_icm, "v1", "v2", state)

    def test_two_hop_flow(self, triangle_icm):
        state = np.array([True, False, True])  # v1->v2->v3
        assert flow_exists(triangle_icm, "v1", "v3", state)

    def test_unknown_node_raises(self, triangle_icm):
        from repro.errors import GraphError

        with pytest.raises(GraphError):
            flow_exists(triangle_icm, "ghost", "v1", np.zeros(3, dtype=bool))


class TestCommunityFlow:
    def test_counts_non_source_reach(self, triangle_icm):
        state = np.ones(3, dtype=bool)
        assert community_flow_count(triangle_icm, ["v1"], state) == 2

    def test_zero_when_nothing_flows(self, triangle_icm):
        state = np.zeros(3, dtype=bool)
        assert community_flow_count(triangle_icm, ["v1"], state) == 0

    def test_sources_not_counted(self, triangle_icm):
        state = np.ones(3, dtype=bool)
        assert community_flow_count(triangle_icm, ["v1", "v2"], state) == 1


class TestSampling:
    @given(seed=st.integers(min_value=0, max_value=200))
    @settings(max_examples=20, deadline=None)
    def test_property_sampled_states_have_positive_probability(self, seed):
        rng = np.random.default_rng(seed)
        model = random_icm(6, 12, rng=rng, probability_range=(0.1, 0.9))
        state = sample_pseudo_state(model, rng)
        assert pseudo_state_probability(model, state) > 0.0

    def test_respects_deterministic_edges(self, triangle_graph):
        model = ICM(triangle_graph, [0.0, 1.0, 0.5])
        rng = np.random.default_rng(3)
        for _ in range(30):
            state = sample_pseudo_state(model, rng)
            assert not state[0] and state[1]
