"""Content-hash fingerprints and the shared point-model collapse."""

import numpy as np
import pytest

from repro.core import BetaICM, ICM, as_point_model, model_fingerprint
from repro.graph.digraph import DiGraph
from repro.graph.generators import random_beta_icm, random_icm


class TestModelFingerprint:
    def test_deterministic_across_calls(self):
        model = random_icm(20, 60, rng=0)
        assert model_fingerprint(model) == model_fingerprint(model)

    def test_equal_content_equal_fingerprint(self):
        first = random_icm(20, 60, rng=0)
        rebuilt = ICM(first.graph, first.edge_probabilities.copy())
        assert model_fingerprint(first) == model_fingerprint(rebuilt)

    def test_probability_change_changes_fingerprint(self):
        model = random_icm(20, 60, rng=0)
        probabilities = model.edge_probabilities.copy()
        probabilities[0] = min(probabilities[0] + 1e-12, 1.0)
        changed = model.with_probabilities(probabilities)
        assert model_fingerprint(model) != model_fingerprint(changed)

    def test_node_labels_matter(self):
        first = ICM(DiGraph(edges=[("a", "b")]), [0.5])
        second = ICM(DiGraph(edges=[("x", "y")]), [0.5])
        assert model_fingerprint(first) != model_fingerprint(second)

    def test_edge_direction_matters(self):
        first = ICM(DiGraph(nodes=["a", "b"], edges=[("a", "b")]), [0.5])
        second = ICM(DiGraph(nodes=["a", "b"], edges=[("b", "a")]), [0.5])
        assert model_fingerprint(first) != model_fingerprint(second)

    def test_beta_parameters_hashed(self):
        model = random_beta_icm(20, 60, rng=0)
        shifted = BetaICM(model.graph, model.alphas + 1.0, model.betas)
        assert model_fingerprint(model) != model_fingerprint(shifted)

    def test_kind_distinguishes_icm_from_beta(self):
        # a betaICM never fingerprints like any ICM, even its own collapse
        beta = random_beta_icm(10, 20, rng=1)
        assert model_fingerprint(beta) != model_fingerprint(beta.expected_icm())

    def test_in_place_mutation_detected(self):
        model = random_beta_icm(10, 20, rng=2)
        before = model_fingerprint(model)
        model._alphas[0] += 1.0
        assert model_fingerprint(model) != before

    def test_rejects_other_types(self):
        with pytest.raises(TypeError, match="ICM or BetaICM"):
            model_fingerprint(object())


class TestAsPointModel:
    def test_icm_passthrough(self):
        model = random_icm(10, 20, rng=0)
        assert as_point_model(model) is model

    def test_beta_collapses_to_expected_icm(self):
        model = random_beta_icm(10, 20, rng=0)
        point = as_point_model(model)
        assert isinstance(point, ICM)
        expected = model.alphas / (model.alphas + model.betas)
        np.testing.assert_allclose(point.edge_probabilities, expected)

    def test_rejects_other_types(self):
        with pytest.raises(TypeError, match="ICM or BetaICM"):
            as_point_model("not a model")

    def test_reexported_from_flow_estimator(self):
        from repro.mcmc.flow_estimator import as_point_model as legacy

        assert legacy is as_point_model
