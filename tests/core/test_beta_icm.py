"""Unit tests for the betaICM."""

import numpy as np
import pytest

from repro.core.beta_icm import BetaICM
from repro.core.icm import ICM
from repro.errors import ModelError
from repro.graph.digraph import DiGraph


class TestConstruction:
    def test_uniform_prior(self, triangle_graph):
        model = BetaICM.uniform_prior(triangle_graph)
        assert np.all(model.alphas == 1.0)
        assert np.all(model.betas == 1.0)
        assert np.allclose(model.means(), 0.5)

    def test_from_mappings(self, triangle_graph):
        model = BetaICM(
            triangle_graph,
            {("v1", "v2"): 3.0, ("v1", "v3"): 1.0, ("v2", "v3"): 2.0},
            {("v1", "v2"): 1.0, ("v1", "v3"): 3.0, ("v2", "v3"): 2.0},
        )
        assert model.edge_parameters("v1", "v2") == (3.0, 1.0)
        assert model.mean("v1", "v2") == 0.75

    def test_parameters_below_minimum_rejected(self, triangle_graph):
        with pytest.raises(ModelError, match="alpha"):
            BetaICM(triangle_graph, [0.5, 1.0, 1.0], [1.0, 1.0, 1.0])
        with pytest.raises(ModelError, match="beta"):
            BetaICM(triangle_graph, [1.0, 1.0, 1.0], [1.0, 0.2, 1.0])

    def test_custom_minimum(self, triangle_graph):
        model = BetaICM(
            triangle_graph, [0.5, 1.0, 1.0], [1.0, 1.0, 1.0], min_param=0.1
        )
        assert model.edge_parameters("v1", "v2")[0] == 0.5

    def test_missing_mapping_entry_rejected(self, triangle_graph):
        with pytest.raises(ModelError, match="missing alphas"):
            BetaICM(triangle_graph, {("v1", "v2"): 1.0}, np.ones(3))


class TestMoments:
    def test_means_formula(self, triangle_graph):
        model = BetaICM(triangle_graph, [2.0, 4.0, 1.0], [2.0, 1.0, 4.0])
        assert np.allclose(model.means(), [0.5, 0.8, 0.2])

    def test_variances_formula(self, triangle_graph):
        model = BetaICM(triangle_graph, [2.0, 2.0, 2.0], [2.0, 2.0, 2.0])
        expected = 2.0 * 2.0 / (4.0**2 * 5.0)
        assert np.allclose(model.variances(), expected)

    def test_more_evidence_means_less_variance(self, triangle_graph):
        weak = BetaICM(triangle_graph, [2.0, 2.0, 2.0], [2.0, 2.0, 2.0])
        strong = BetaICM(triangle_graph, [20.0, 20.0, 20.0], [20.0, 20.0, 20.0])
        assert np.all(strong.variances() < weak.variances())


class TestConversion:
    def test_expected_icm(self, triangle_graph):
        model = BetaICM(triangle_graph, [3.0, 1.0, 1.0], [1.0, 1.0, 3.0])
        icm = model.expected_icm()
        assert isinstance(icm, ICM)
        assert np.allclose(icm.edge_probabilities, [0.75, 0.5, 0.25])

    def test_sample_icm_within_bounds(self, small_beta_icm, rng):
        icm = small_beta_icm.sample_icm(rng)
        assert np.all(icm.edge_probabilities >= 0.0)
        assert np.all(icm.edge_probabilities <= 1.0)

    def test_sampled_icms_concentrate_on_mean(self, triangle_graph):
        model = BetaICM(triangle_graph, [300.0, 1.0, 1.0], [100.0, 1.0, 1.0])
        rng = np.random.default_rng(0)
        draws = [model.sample_icm(rng).probability("v1", "v2") for _ in range(200)]
        assert abs(np.mean(draws) - 0.75) < 0.01


class TestObserve:
    def test_counts_update(self, triangle_graph):
        model = BetaICM.uniform_prior(triangle_graph)
        updated = model.observe(
            activations={("v1", "v2"): 3},
            non_activations={("v1", "v2"): 1, ("v2", "v3"): 2},
        )
        assert updated.edge_parameters("v1", "v2") == (4.0, 2.0)
        assert updated.edge_parameters("v2", "v3") == (1.0, 3.0)
        # original untouched
        assert model.edge_parameters("v1", "v2") == (1.0, 1.0)

    def test_negative_counts_rejected(self, triangle_graph):
        model = BetaICM.uniform_prior(triangle_graph)
        with pytest.raises(ModelError, match="negative"):
            model.observe({("v1", "v2"): -1}, {})
