"""Unit tests for the point-probability ICM."""

import numpy as np
import pytest

from repro.core.icm import ICM
from repro.errors import ModelError
from repro.graph.digraph import DiGraph


class TestConstruction:
    def test_from_array(self, triangle_graph):
        model = ICM(triangle_graph, [0.1, 0.2, 0.3])
        assert model.probability_by_index(0) == 0.1
        assert model.n_edges == 3

    def test_from_mapping(self, triangle_graph):
        model = ICM(triangle_graph, {("v1", "v2"): 0.5, ("v1", "v3"): 0.25, ("v2", "v3"): 0.8})
        assert model.probability("v2", "v3") == 0.8

    def test_mapping_missing_edge_rejected(self, triangle_graph):
        with pytest.raises(ModelError, match="missing probabilities"):
            ICM(triangle_graph, {("v1", "v2"): 0.5})

    def test_wrong_length_rejected(self, triangle_graph):
        with pytest.raises(ModelError, match="shape"):
            ICM(triangle_graph, [0.1, 0.2])

    def test_out_of_range_rejected(self, triangle_graph):
        with pytest.raises(ModelError, match=r"\[0, 1\]"):
            ICM(triangle_graph, [0.1, 1.2, 0.3])
        with pytest.raises(ModelError):
            ICM(triangle_graph, [-0.1, 0.2, 0.3])

    def test_boundary_probabilities_allowed(self, triangle_graph):
        model = ICM(triangle_graph, [0.0, 1.0, 0.5])
        assert model.probability_by_index(0) == 0.0
        assert model.probability_by_index(1) == 1.0


class TestImmutability:
    def test_probabilities_read_only(self, triangle_icm):
        with pytest.raises(ValueError):
            triangle_icm.edge_probabilities[0] = 0.9

    def test_input_array_not_aliased(self, triangle_graph):
        values = np.array([0.1, 0.2, 0.3])
        model = ICM(triangle_graph, values)
        values[0] = 0.9
        assert model.probability_by_index(0) == 0.1


class TestAccessors:
    def test_as_mapping_roundtrip(self, triangle_icm):
        mapping = triangle_icm.as_mapping()
        rebuilt = ICM(triangle_icm.graph, mapping)
        assert np.array_equal(
            rebuilt.edge_probabilities, triangle_icm.edge_probabilities
        )

    def test_with_probabilities(self, triangle_icm):
        updated = triangle_icm.with_probabilities([0.9, 0.9, 0.9])
        assert updated.graph is triangle_icm.graph
        assert updated.probability_by_index(0) == 0.9
        assert triangle_icm.probability_by_index(0) == 0.5

    def test_counts(self, triangle_icm):
        assert triangle_icm.n_nodes == 3
        assert triangle_icm.n_edges == 3


class TestSampling:
    def test_sample_shape_and_dtype(self, triangle_icm, rng):
        state = triangle_icm.sample_pseudo_state(rng)
        assert state.shape == (3,)
        assert state.dtype == bool

    def test_deterministic_edges(self, triangle_graph, rng):
        model = ICM(triangle_graph, [0.0, 1.0, 0.5])
        for _ in range(50):
            state = model.sample_pseudo_state(rng)
            assert not state[0]
            assert state[1]

    def test_sample_frequencies_match_probabilities(self, triangle_icm):
        rng = np.random.default_rng(0)
        states = np.array(
            [triangle_icm.sample_pseudo_state(rng) for _ in range(20_000)]
        )
        means = states.mean(axis=0)
        assert np.allclose(means, triangle_icm.edge_probabilities, atol=0.02)
