"""Exact flow computation: factoring, Equation (2), and brute force."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.conditions import FlowConditionSet
from repro.core.exact import (
    brute_force_community_distribution,
    brute_force_conditional_flow_probability,
    brute_force_flow_probability,
    enumerate_pseudo_states,
    equation2_flow_probability,
    exact_flow_probability,
)
from repro.core.icm import ICM
from repro.errors import InfeasibleConditionsError
from repro.graph.digraph import DiGraph
from repro.graph.generators import random_icm


class TestWorkedExamples:
    """The paper's Section II worked examples, where Eq. (2) is exact."""

    def test_equation_one_acyclic(self, triangle_icm):
        """Pr[v1;v3] = 1 - (1 - p12 p23)(1 - p13) on the acyclic triangle."""
        expected = 1.0 - (1.0 - 0.5 * 0.8) * (1.0 - 0.25)
        assert exact_flow_probability(triangle_icm, "v1", "v3") == pytest.approx(
            expected
        )
        assert equation2_flow_probability(
            triangle_icm, "v1", "v3"
        ) == pytest.approx(expected)

    def test_cyclic_graph_same_v1_v3(self, cyclic_icm):
        """Adding (v3, v2) leaves Pr[v1;v3] unchanged (paper Section II)."""
        expected = 1.0 - (1.0 - 0.5 * 0.8) * (1.0 - 0.25)
        assert exact_flow_probability(cyclic_icm, "v1", "v3") == pytest.approx(
            expected
        )
        assert equation2_flow_probability(
            cyclic_icm, "v1", "v3"
        ) == pytest.approx(expected)

    def test_cyclic_flow_through_new_arc(self, cyclic_icm):
        """Pr[v1;v2] now includes the path v1->v3->v2."""
        # 1 - (1 - Pr[v1;v3 ex {v2}] * p32)(1 - p12); Pr[v1;v3 ex {v2}] = p13
        expected = 1.0 - (1.0 - 0.25 * 0.6) * (1.0 - 0.5)
        assert exact_flow_probability(cyclic_icm, "v1", "v2") == pytest.approx(
            expected
        )
        assert equation2_flow_probability(
            cyclic_icm, "v1", "v2"
        ) == pytest.approx(expected)

    def test_chain(self, chain_icm):
        assert exact_flow_probability(chain_icm, "a", "c") == pytest.approx(0.25)

    def test_self_flow_is_one(self, triangle_icm):
        assert exact_flow_probability(triangle_icm, "v1", "v1") == 1.0
        assert equation2_flow_probability(triangle_icm, "v1", "v1") == 1.0

    def test_unreachable_is_zero(self, triangle_icm):
        assert exact_flow_probability(triangle_icm, "v3", "v1") == 0.0

    def test_exclude_set_blocks_path(self, triangle_icm):
        # excluding v2 leaves only the direct arc
        assert equation2_flow_probability(
            triangle_icm, "v1", "v3", exclude=("v2",)
        ) == pytest.approx(0.25)

    def test_exclude_containing_endpoint_rejected(self, triangle_icm):
        with pytest.raises(ValueError, match="endpoints"):
            equation2_flow_probability(triangle_icm, "v1", "v3", exclude=("v1",))


class TestFactoringIsExact:
    @given(seed=st.integers(min_value=0, max_value=300))
    @settings(max_examples=25, deadline=None)
    def test_property_factoring_equals_enumeration(self, seed):
        rng = np.random.default_rng(seed)
        model = random_icm(6, 12, rng=rng, probability_range=(0.05, 0.95))
        factored = exact_flow_probability(model, "v0", "v1")
        enumerated = brute_force_flow_probability(model, "v0", "v1")
        assert factored == pytest.approx(enumerated, abs=1e-10)

    def test_cyclic_agreement(self, cyclic_icm):
        for sink in ("v2", "v3"):
            assert exact_flow_probability(
                cyclic_icm, "v1", sink
            ) == pytest.approx(
                brute_force_flow_probability(cyclic_icm, "v1", sink), abs=1e-12
            )

    def test_two_node_cycle(self):
        graph = DiGraph(edges=[("a", "b"), ("b", "a")])
        model = ICM(graph, [0.7, 0.4])
        assert exact_flow_probability(model, "a", "b") == pytest.approx(0.7)
        assert brute_force_flow_probability(model, "a", "b") == pytest.approx(0.7)

    def test_deterministic_edges(self):
        graph = DiGraph(edges=[("a", "b"), ("b", "c"), ("a", "c")])
        model = ICM(graph, [1.0, 0.0, 0.0])
        assert exact_flow_probability(model, "a", "c") == 0.0
        assert exact_flow_probability(model, "a", "b") == 1.0

    def test_refuses_huge_graphs(self):
        model = random_icm(10, 60, rng=0)
        with pytest.raises(ValueError, match="refusing"):
            exact_flow_probability(model, "v0", "v1")


class TestEquationTwoIsApproximateOnSharedPrefixes:
    """Eq. (2) over-estimates when converging paths share an edge."""

    @pytest.fixture
    def shared_prefix_icm(self):
        # s -> m, then m -> a -> t and m -> b -> t: both t-paths share s->m.
        graph = DiGraph(
            edges=[("s", "m"), ("m", "a"), ("m", "b"), ("a", "t"), ("b", "t")]
        )
        return ICM(graph, [0.5, 0.8, 0.8, 0.8, 0.8])

    def test_overestimates(self, shared_prefix_icm):
        truth = brute_force_flow_probability(shared_prefix_icm, "s", "t")
        approx = equation2_flow_probability(shared_prefix_icm, "s", "t")
        assert approx > truth + 1e-6

    def test_exact_on_edge_disjoint_paths(self, triangle_icm):
        truth = brute_force_flow_probability(triangle_icm, "v1", "v3")
        approx = equation2_flow_probability(triangle_icm, "v1", "v3")
        assert approx == pytest.approx(truth, abs=1e-12)


class TestEnumeration:
    def test_enumerates_all_states(self):
        states = list(enumerate_pseudo_states(3))
        assert len(states) == 8
        assert len({tuple(state) for state in states}) == 8

    def test_refuses_large_graphs(self):
        with pytest.raises(ValueError, match="refusing"):
            list(enumerate_pseudo_states(25))


class TestConditional:
    def test_conditioning_on_enabling_flow_raises_probability(self, chain_icm):
        """Knowing a;b raises Pr[a;c] from 0.25 to 0.5."""
        conditions = FlowConditionSet.from_tuples([("a", "b", True)])
        value = brute_force_conditional_flow_probability(
            chain_icm, "a", "c", conditions
        )
        assert value == pytest.approx(0.5)

    def test_conditioning_on_absence(self, chain_icm):
        """Knowing a does NOT reach b kills a;c entirely."""
        conditions = FlowConditionSet.from_tuples([("a", "b", False)])
        value = brute_force_conditional_flow_probability(
            chain_icm, "a", "c", conditions
        )
        assert value == 0.0

    def test_infeasible_conditions_raise(self):
        graph = DiGraph(edges=[("a", "b")])
        model = ICM(graph, [1.0])  # flow a;b is certain
        conditions = FlowConditionSet.from_tuples([("a", "b", False)])
        with pytest.raises(InfeasibleConditionsError):
            brute_force_conditional_flow_probability(model, "a", "b", conditions)

    def test_condition_on_required_flow_itself(self, triangle_icm):
        conditions = FlowConditionSet.from_tuples([("v1", "v3", True)])
        value = brute_force_conditional_flow_probability(
            triangle_icm, "v1", "v3", conditions
        )
        assert value == pytest.approx(1.0)


class TestCommunityDistribution:
    def test_distribution_sums_to_one(self, triangle_icm):
        distribution = brute_force_community_distribution(triangle_icm, "v1")
        assert sum(distribution.values()) == pytest.approx(1.0)

    def test_certain_cascade(self):
        graph = DiGraph(edges=[("a", "b"), ("b", "c")])
        model = ICM(graph, [1.0, 1.0])
        distribution = brute_force_community_distribution(model, "a")
        assert distribution[2] == pytest.approx(1.0)

    def test_mean_matches_sum_of_flow_probabilities(self, triangle_icm):
        """E[impact] = sum over sinks of Pr[source ; sink] (linearity)."""
        distribution = brute_force_community_distribution(triangle_icm, "v1")
        mean = sum(k * p for k, p in distribution.items())
        total = sum(
            exact_flow_probability(triangle_icm, "v1", sink)
            for sink in ("v2", "v3")
        )
        assert mean == pytest.approx(total, abs=1e-12)
