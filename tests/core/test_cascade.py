"""Unit and statistical tests for forward cascade simulation."""

import numpy as np
import pytest

from repro.core.cascade import CascadeResult, simulate_cascade, simulate_cascades
from repro.core.icm import ICM
from repro.graph.digraph import DiGraph


class TestBasics:
    def test_source_always_active(self, triangle_icm, rng):
        result = simulate_cascade(triangle_icm, ["v1"], rng)
        assert "v1" in result.active_nodes
        assert result.sources == frozenset({"v1"})
        assert result.activation_round["v1"] == 0

    def test_requires_source(self, triangle_icm):
        with pytest.raises(ValueError, match="at least one source"):
            simulate_cascade(triangle_icm, [])

    def test_unknown_source_rejected(self, triangle_icm):
        from repro.errors import GraphError

        with pytest.raises(GraphError):
            simulate_cascade(triangle_icm, ["ghost"])

    def test_deterministic_chain(self):
        graph = DiGraph(edges=[("a", "b"), ("b", "c")])
        model = ICM(graph, [1.0, 1.0])
        result = simulate_cascade(model, ["a"], rng=0)
        assert result.active_nodes == frozenset({"a", "b", "c"})
        assert result.activation_round == {"a": 0, "b": 1, "c": 2}
        assert result.impact == 2

    def test_zero_probability_blocks(self):
        graph = DiGraph(edges=[("a", "b"), ("b", "c")])
        model = ICM(graph, [1.0, 0.0])
        result = simulate_cascade(model, ["a"], rng=0)
        assert result.active_nodes == frozenset({"a", "b"})


class TestAttribution:
    def test_every_non_source_attributed(self, small_random_icm, rng):
        result = simulate_cascade(small_random_icm, ["v0"], rng)
        for node in result.active_nodes - result.sources:
            edge = small_random_icm.graph.edge(result.attribution[node])
            assert edge.dst == node
            assert edge.src in result.active_nodes
            # parent activated strictly earlier
            assert (
                result.activation_round[edge.src] < result.activation_round[node]
            )

    def test_attribution_edges_are_active(self, small_random_icm, rng):
        result = simulate_cascade(small_random_icm, ["v0"], rng)
        for edge_index in result.attribution.values():
            assert edge_index in result.active_edges

    def test_sources_never_attributed(self, small_random_icm, rng):
        result = simulate_cascade(small_random_icm, ["v0", "v1"], rng)
        assert "v0" not in result.attribution
        assert "v1" not in result.attribution


class TestActiveEdges:
    def test_active_edges_have_active_endpoints(self, small_random_icm, rng):
        result = simulate_cascade(small_random_icm, ["v0"], rng)
        for edge_index in result.active_edges:
            edge = small_random_icm.graph.edge(edge_index)
            assert edge.src in result.active_nodes
            assert edge.dst in result.active_nodes

    def test_redundant_arrival_recorded(self):
        # diamond with certain edges: t reached via both a and b;
        # both incoming edges must be active.
        graph = DiGraph(edges=[("s", "a"), ("s", "b"), ("a", "t"), ("b", "t")])
        model = ICM(graph, [1.0, 1.0, 1.0, 1.0])
        result = simulate_cascade(model, ["s"], rng=0)
        assert len(result.active_edges) == 4


class TestStatistics:
    def test_single_edge_activation_frequency(self):
        graph = DiGraph(edges=[("a", "b")])
        model = ICM(graph, [0.3])
        rng = np.random.default_rng(0)
        hits = sum(
            simulate_cascade(model, ["a"], rng).reached("b") for _ in range(20_000)
        )
        assert hits / 20_000 == pytest.approx(0.3, abs=0.02)

    def test_cascade_matches_pseudo_state_flow_probability(self, triangle_icm):
        """Cascade sampling and pseudo-state enumeration agree on Pr[v1;v3]."""
        from repro.core.exact import brute_force_flow_probability

        exact = brute_force_flow_probability(triangle_icm, "v1", "v3")
        rng = np.random.default_rng(1)
        hits = sum(
            simulate_cascade(triangle_icm, ["v1"], rng).reached("v3")
            for _ in range(20_000)
        )
        assert hits / 20_000 == pytest.approx(exact, abs=0.02)

    def test_equation_one_worked_example(self, triangle_icm):
        """Paper Eq. (1): Pr[v1;v3] = 1 - (1 - p12 p23)(1 - p13)."""
        expected = 1.0 - (1.0 - 0.5 * 0.8) * (1.0 - 0.25)
        rng = np.random.default_rng(2)
        hits = sum(
            simulate_cascade(triangle_icm, ["v1"], rng).reached("v3")
            for _ in range(20_000)
        )
        assert hits / 20_000 == pytest.approx(expected, abs=0.02)


class TestBatch:
    def test_simulate_cascades_count(self, triangle_icm, rng):
        results = simulate_cascades(triangle_icm, [["v1"], ["v2"], ["v1", "v2"]], rng)
        assert len(results) == 3
        assert results[2].sources == frozenset({"v1", "v2"})
